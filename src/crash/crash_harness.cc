#include "crash/crash_harness.hh"

#include <algorithm>
#include <set>

#include "core/env_config.hh"
#include "core/observer_util.hh"
#include "runtime/recovery.hh"
#include "sanitizer/pmo_sanitizer.hh"
#include "sim/random.hh"

namespace strand
{

CrashPointPlan
planCrashPoints(std::vector<Tick> enumerated, Tick endTick,
                const CrashHarnessConfig &config)
{
    CrashPointPlan plan;
    plan.requested = config.pointBudget;
    std::sort(enumerated.begin(), enumerated.end());
    enumerated.erase(
        std::unique(enumerated.begin(), enumerated.end()),
        enumerated.end());
    plan.enumerated = enumerated.size();
    if (config.pointBudget == 0)
        return plan;

    const std::size_t budget = config.pointBudget;
    const std::size_t count = enumerated.size();
    std::vector<Tick> &points = plan.points;
    if (count <= budget) {
        points = enumerated;
    } else if (budget == 1) {
        // With room for a single point, keep the last one: the fully
        // committed end-of-enumeration state is the one the old
        // sampler silently skipped.
        points.push_back(enumerated.back());
    } else {
        // Even sampling that retains both endpoints: i*(N-1)/(B-1)
        // walks index 0 to N-1 with average stride (N-1)/(B-1) >= 1
        // (N > B here), so all B indices are distinct.
        points.reserve(budget);
        for (std::size_t i = 0; i < budget; ++i)
            points.push_back(enumerated[i * (count - 1) /
                                        (budget - 1)]);
    }

    // Random ticks between admissions probe the same persisted
    // states through an independent path. An empty enumeration means
    // the run persisted nothing — there is no state to probe, so no
    // top-up. Drawn ticks that collide with selected ones are
    // redrawn (bounded), never silently double-counted.
    if (count > 0 && endTick > 0) {
        const std::size_t target = std::min(budget, count) / 4 + 1;
        Rng rng(config.seed);
        std::set<Tick> chosen(points.begin(), points.end());
        std::size_t accepted = 0;
        for (std::size_t attempt = 0;
             accepted < target && attempt < 4 * target + 16;
             ++attempt) {
            if (chosen.insert(rng.nextRange(1, endTick)).second)
                ++accepted;
        }
        points.assign(chosen.begin(), chosen.end());
    }
    return plan;
}

namespace
{

/**
 * Admit-mask for tearing the most recent admission: the first
 * @p tornWords written words of @p written stay durable.
 */
std::uint8_t
tornAdmitMask(std::uint8_t written, unsigned tornWords)
{
    std::uint8_t admit = 0;
    unsigned kept = 0;
    for (unsigned i = 0; i < wordsPerLine && kept < tornWords; ++i) {
        if (written & (1u << i)) {
            admit |= static_cast<std::uint8_t>(1u << i);
            ++kept;
        }
    }
    return admit;
}

/** One evaluated crash point, before folding into the cell result. */
struct PointOutcome
{
    Tick when = 0;
    bool passed = false;
    RecoveryReport report;
    std::string violation;
};

} // namespace

CrashCellResult
runCrashCell(const RecordedWorkload &recorded, HwDesign design,
             PersistencyModel model, const CrashHarnessConfig &config,
             CrashStats *stats)
{
    CrashCellResult result;
    result.design = design;
    result.model = model;
    result.workload =
        recorded.workload ? recorded.workload->name() : "?";
    result.pointsRequested = config.pointBudget;

    InstrumentorParams ip;
    ip.design = design;
    ip.model = model;
    ip.logStyle = config.logStyle;
    Instrumentor instr(ip);
    auto streams = instr.lower(recorded.trace);
    CrashOracle oracle(recorded.trace, instr.regionLog(),
                       recorded.preload, ip.layout);

    auto buildSystem = [&]() {
        SystemConfig sysCfg = config.experiment.baseSystem;
        sysCfg.numCores = static_cast<unsigned>(streams.size());
        sysCfg.design = design;
        sysCfg.engine = config.experiment.engine;
        sysCfg.engine.recordCompletionTicks = true;
        sysCfg.layout = ip.layout;
        auto sys = std::make_unique<System>(sysCfg);
        sys->seedImage(recorded.preload);
        auto copies = streams;
        sys->loadStreams(std::move(copies));
        return sys;
    };

    if (config.pointBudget == 0)
        return result;

    const bool forked =
        config.fork.value_or(envConfig().crashFork.value_or(false));
    const bool pmosan =
        config.pmosan.value_or(envConfig().pmosan.value_or(false));
    RecoveryManager recovery{ip.layout};
    const unsigned programThreads = recorded.params.numThreads;
    // The paged scan is what makes forking cheap; the two-run oracle
    // stays on the faithful per-word scan so the CI differential gate
    // also cross-checks the two scans against each other.
    const RecoveryScan scan =
        forked ? RecoveryScan::Paged : RecoveryScan::Faithful;

    // Evaluate one crash point against @p machine's persisted view.
    // Pure: clones the image, recovers the clone, checks the oracle
    // and the workload invariants; @p machine is never written.
    auto evaluate = [&](const MemoryImage &machine, Tick when) {
        PointOutcome outcome;
        outcome.when = when;
        MemoryImage snapshot;
        if (config.tornWords >= wordsPerLine) {
            snapshot = machine.clonePersisted();
        } else {
            // Tear the final admission: keep the first tornWords of
            // its written words, revert the rest to their prior
            // persisted state.
            snapshot = machine.clonePersistedTorn(tornAdmitMask(
                machine.lastAdmissionMask(), config.tornWords));
        }
        // Media faults strike the frozen snapshot — the moment the
        // power failed — before the oracle classifies regions, so
        // the oracle reasons over exactly the state recovery sees.
        if (config.media.any()) {
            applyMediaFaults(snapshot, machine.recentAdmissions(),
                             config.media, ip.layout, when);
        }
        std::vector<bool> committed =
            oracle.committedRegions(snapshot);
        RecoveryOptions options;
        options.verifyChecksums = config.verifyChecksums;
        outcome.report =
            recovery.recover(snapshot, programThreads, scan, options);

        std::string err;
        if (outcome.report.verdict == RecoveryVerdict::Failed) {
            err = "recovery FAILED: metadata area poisoned";
        } else {
            err = oracle.checkRecovered(snapshot, committed,
                                        &outcome.report);
        }
        // Structural invariants assume every region was resolved;
        // a degraded recovery deliberately leaves quarantined
        // threads' regions unresolved, so only FULL verdicts are
        // held to them (media off always yields FULL).
        if (err.empty() && recorded.workload &&
            outcome.report.verdict == RecoveryVerdict::Full) {
            auto read = [&snapshot](Addr addr) {
                return snapshot.readPersisted(addr);
            };
            err = recorded.workload->checkInvariants(read);
        }
        outcome.passed = err.empty();
        outcome.violation = std::move(err);
        return outcome;
    };

    // Fold an outcome into the cell result. Both modes fold in
    // injection order (ascending ticks, end-of-run last), so the
    // result — counters, stats samples, failure list — is identical
    // between them by construction.
    auto fold = [&](PointOutcome &&outcome) {
        ++result.pointsTested;
        result.totalRolledBack += outcome.report.entriesRolledBack;
        result.totalReplayed += outcome.report.redoEntriesReplayed;
        result.totalTornSkipped += outcome.report.tornEntriesSkipped;
        result.totalCorruptQuarantined +=
            outcome.report.corruptEntriesQuarantined;
        result.totalPoisonedQuarantined +=
            outcome.report.poisonedEntriesQuarantined;
        result.totalQuarantinedAddrs +=
            outcome.report.quarantinedAddrs.size();
        switch (outcome.report.verdict) {
          case RecoveryVerdict::Full:
            ++result.verdictFull;
            break;
          case RecoveryVerdict::Degraded:
            ++result.verdictDegraded;
            break;
          case RecoveryVerdict::Failed:
            ++result.verdictFailed;
            break;
        }
        if (stats) {
            stats->rolledBack.sample(static_cast<double>(
                outcome.report.entriesRolledBack));
            stats->replayed.sample(static_cast<double>(
                outcome.report.redoEntriesReplayed));
        }
        if (outcome.passed) {
            ++result.pointsPassed;
            return;
        }
        CrashPointResult point;
        point.when = outcome.when;
        point.passed = false;
        point.entriesRolledBack = outcome.report.entriesRolledBack;
        point.redoEntriesReplayed =
            outcome.report.redoEntriesReplayed;
        if (result.failures.size() < 32)
            point.violation = std::move(outcome.violation);
        result.failures.push_back(std::move(point));
    };

    auto foldSanitizer = [&](const PmoSanitizer &sanitizer,
                             Tick finishTick) {
        if (sanitizer.ok())
            return;
        // A persist-order violation is a failure of the cell even
        // when every snapshot happened to recover: it means an
        // ordering the program asked for was not honored by the
        // hardware model.
        CrashPointResult point;
        point.when = sanitizer.violations().empty()
                         ? finishTick
                         : sanitizer.violations()[0].when;
        point.passed = false;
        ++result.pointsTested;
        if (result.failures.size() < 32)
            point.violation = sanitizer.report();
        result.failures.push_back(std::move(point));
    };

    if (forked) {
        // Warm run: enumerate crash points AND capture the pre-image
        // of every ADR admission. The admission observer fires right
        // after persistLine(), so lastAdmissionUndo() is exactly this
        // admission's delta.
        std::vector<Tick> enumerated;
        struct AdmitDelta
        {
            Tick when;
            MemoryImage::AdmissionUndo undo;
        };
        std::vector<AdmitDelta> admits;
        auto sys = buildSystem();
        PmoSanitizer sanitizer;
        if (pmosan)
            sys->addObserver(&sanitizer);

        // Mid-run full-machine captures at power-of-two admission
        // counts. Each capture is taken by a Stat-priority one-shot,
        // after every same-tick admission and core tick has settled
        // (and the capture event itself has been released, so it is
        // not part of the snapshot). Only the last two are kept: the
        // older one leaves a non-trivial tail to re-execute for the
        // determinism check below. The extra events shift kernel seq
        // numbers uniformly, which cannot reorder dispatch, so the
        // warm run's trace — and the .cells output — is unperturbed.
        struct MachineCapture
        {
            Tick when = 0;
            SimSnapshot snap;
            PmoSanitizer::State sanitizerState;
        };
        std::deque<MachineCapture> machineCaptures;
        std::uint64_t admissionsSeen = 0;
        bool capturing = config.verifyMidrunFork;
        auto captureMachine = [&] {
            if (!capturing)
                return;
            MachineCapture cap;
            cap.when = sys->eventQueue().curTick();
            cap.snap = sys->snapshot();
            cap.sanitizerState = sanitizer.snapshotState();
            inform("crash-fork capture @{}: {} keys, ~{} bytes",
                   cap.when, cap.snap.size(),
                   cap.snap.approxBytes());
            machineCaptures.push_back(std::move(cap));
            if (machineCaptures.size() > 2)
                machineCaptures.pop_front();
        };

        AdmissionCallback admissions(
            [&](const PersistRecord &rec) {
                enumerated.push_back(rec.when);
                admits.push_back(
                    {rec.when, sys->memory().lastAdmissionUndo()});
                ++admissionsSeen;
                if (capturing &&
                    (admissionsSeen & (admissionsSeen - 1)) == 0)
                    sys->eventQueue().schedule(rec.when,
                                               captureMachine,
                                               EventPriority::Stat);
            });
        sys->addObserver(&admissions);
        Tick endTick = sys->run();
        result.hostEvents += sys->eventsServiced();
        result.simOps +=
            static_cast<std::uint64_t>(sys->totalCommitted());
        for (CoreId i = 0; i < sys->numCores(); ++i) {
            const std::vector<Tick> &ticks =
                sys->core(i).persistEngine().completionTicks();
            enumerated.insert(enumerated.end(), ticks.begin(),
                              ticks.end());
        }
        const Tick finishTick = sys->finishTick();

        // Determinism check: rewind the whole machine to the older
        // capture and re-run the tail. The restored execution must be
        // bit-identical to the uninterrupted one — same finish tick,
        // same persist trace — or the forked results cannot be
        // trusted. The admission observer is detached first so the
        // replayed tail does not duplicate enumeration state; the
        // sanitizer is rewound alongside and re-checks the tail.
        if (!machineCaptures.empty()) {
            capturing = false;
            sys->removeObserver(&admissions);
            const MachineCapture &cap = machineCaptures.front();
            const std::vector<PersistRecord> reference =
                sys->persistTrace();
            inform("crash-fork restore @{} (finish {}): re-running "
                   "tail for the determinism check",
                   cap.when, finishTick);
            sys->restore(cap.snap);
            sanitizer.restoreState(cap.sanitizerState);
            const Tick refork = sys->run();
            panicIf(refork != finishTick,
                    "mid-run fork diverged: restored run finished at "
                    "{} instead of {}", refork, finishTick);
            panicIf(sys->persistTrace() != reference,
                    "mid-run fork diverged: restored persist trace "
                    "does not match the uninterrupted run");
        }

        CrashPointPlan plan =
            planCrashPoints(std::move(enumerated), endTick, config);
        result.pointsInjected =
            static_cast<unsigned>(plan.points.size()) + 1;

        // The end-of-run point needs no rewind: evaluate it on the
        // final image directly (folded last, as in two-run mode).
        PointOutcome endOutcome =
            evaluate(sys->memory(), finishTick);

        // Fork the final image and rewind the admission chain,
        // newest first. At each planned point T the reconstructed
        // persisted view holds every admission with when <= T —
        // identical to what a Stat-priority injection at T observes
        // in the two-run mode.
        MemoryImage machine = sys->memory();
        sys.reset();
        std::vector<PointOutcome> outcomes;
        outcomes.reserve(plan.points.size());
        for (auto it = plan.points.rbegin();
             it != plan.points.rend(); ++it) {
            const Tick when = *it;
            while (!admits.empty() && admits.back().when > when) {
                machine.undoAdmission(admits.back().undo);
                admits.pop_back();
            }
            machine.setLastAdmission(
                admits.empty() ? MemoryImage::AdmissionUndo{}
                               : admits.back().undo);
            // Media faults draw partial-drain and content targets
            // from the admission ring; restore the ring a crash at
            // this tick would have left so both harness modes pick
            // identical fault candidates.
            if (config.media.any()) {
                AdmissionRing ring;
                std::size_t start =
                    admits.size() > MemoryImage::admissionRingDepth
                        ? admits.size() -
                              MemoryImage::admissionRingDepth
                        : 0;
                for (std::size_t i = start; i < admits.size(); ++i)
                    ring.push_back(admits[i].undo);
                machine.setRecentAdmissions(std::move(ring));
            }
            outcomes.push_back(evaluate(machine, when));
        }
        for (auto it = outcomes.rbegin(); it != outcomes.rend();
             ++it)
            fold(std::move(*it));
        fold(std::move(endOutcome));
        foldSanitizer(sanitizer, finishTick);
    } else {
        // Reference run: enumerate candidate crash points. Persisted
        // state only changes at ADR admissions, so the admission
        // ticks cover every distinct post-crash image.
        std::vector<Tick> enumerated;
        Tick endTick = 0;
        {
            auto ref = buildSystem();
            AdmissionCallback admissions(
                [&enumerated](const PersistRecord &rec) {
                    enumerated.push_back(rec.when);
                });
            ref->addObserver(&admissions);
            endTick = ref->run();
            result.hostEvents += ref->eventsServiced();
            result.simOps +=
                static_cast<std::uint64_t>(ref->totalCommitted());
            for (CoreId i = 0; i < ref->numCores(); ++i) {
                const std::vector<Tick> &ticks =
                    ref->core(i).persistEngine().completionTicks();
                enumerated.insert(enumerated.end(), ticks.begin(),
                                  ticks.end());
            }
        }
        CrashPointPlan plan =
            planCrashPoints(std::move(enumerated), endTick, config);
        result.pointsInjected =
            static_cast<unsigned>(plan.points.size()) + 1;

        // Injection run: identical schedule; the snapshot callbacks
        // are pure observers, so timing is not perturbed. Injections
        // run at Stat priority — after every same-tick admission
        // (MemoryResponse) — pinning the "state at tick T" semantics
        // the forked mode reconstructs.
        auto sys = buildSystem();
        PmoSanitizer sanitizer;
        if (pmosan)
            sys->addObserver(&sanitizer);
        for (Tick when : plan.points)
            sys->eventQueue().schedule(
                when,
                [&, when] { fold(evaluate(sys->memory(), when)); },
                EventPriority::Stat);
        sys->run();
        result.hostEvents += sys->eventsServiced();
        result.simOps +=
            static_cast<std::uint64_t>(sys->totalCommitted());
        // The completed run is one more crash point: a failure after
        // the last persist must recover to the final state.
        fold(evaluate(sys->memory(), sys->finishTick()));
        foldSanitizer(sanitizer, sys->finishTick());
    }

    if (stats)
        stats->record(result);
    return result;
}

} // namespace strand
