file(REMOVE_RECURSE
  "libsw_sanitizer.a"
)
