# Empty dependencies file for sw_sanitizer.
# This may be replaced when dependencies are built.
