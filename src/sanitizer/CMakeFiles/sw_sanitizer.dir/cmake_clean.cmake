file(REMOVE_RECURSE
  "CMakeFiles/sw_sanitizer.dir/pmo_sanitizer.cc.o"
  "CMakeFiles/sw_sanitizer.dir/pmo_sanitizer.cc.o.d"
  "libsw_sanitizer.a"
  "libsw_sanitizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_sanitizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
