#include "sanitizer/pmo_sanitizer.hh"

#include <sstream>

#include "cpu/op.hh"

namespace strand
{

namespace
{

std::string
hexAddr(Addr addr)
{
    std::ostringstream os;
    os << "0x" << std::hex << addr;
    return os.str();
}

} // namespace

PmoSanitizer::CoreState &
PmoSanitizer::coreState(CoreId core)
{
    if (coresState.size() <= core)
        coresState.resize(core + 1);
    return coresState[core];
}

void
PmoSanitizer::onPrimitiveDispatched(const PrimitiveEvent &ev)
{
    CoreState &cs = coreState(ev.core);

    // Apply the op's ordering intents, in the order they act
    // immediately before it: a NewStrand opens a fresh strand, a
    // Join additionally closes the epoch, a Barrier advances the
    // level within the (possibly new) strand.
    if (ev.intents & kIntentNewStrand) {
        ++cs.strandSeq;
        cs.pbLevel = 0;
        cs.levelStartTick = ev.when;
    }
    if (ev.intents & kIntentJoin) {
        ++cs.jsEpoch;
        ++cs.strandSeq;
        cs.pbLevel = 0;
        cs.levelStartTick = ev.when;
        cs.epochStartTick = ev.when;
    }
    if (ev.intents & kIntentBarrier) {
        ++cs.pbLevel;
        cs.levelStartTick = ev.when;
    }

    if (ev.kind != PrimitiveKind::Clwb)
        return;

    Persist p;
    p.core = ev.core;
    p.line = ev.lineAddr;
    p.seq = ev.seq;
    p.dispatchTick = ev.when;
    p.strand = cs.strandSeq;
    p.level = cs.pbLevel;
    p.epoch = cs.jsEpoch;
    p.levelStartTick = cs.levelStartTick;
    p.epochStartTick = cs.epochStartTick;

    auto idx = static_cast<std::uint32_t>(arena.size());
    arena.push_back(p);
    cs.bySeq.emplace(ev.seq, idx);

    if (cs.strands.size() <= p.strand)
        cs.strands.resize(p.strand + 1);
    Strand &strand = cs.strands[p.strand];
    if (strand.levels.size() <= p.level)
        strand.levels.resize(p.level + 1);
    strand.levels[p.level].push_back(idx);

    if (cs.epochs.size() <= p.epoch)
        cs.epochs.resize(p.epoch + 1);
    cs.epochs[p.epoch].push_back(idx);
}

void
PmoSanitizer::onPersistAdmitted(const PersistRecord &rec)
{
    ++admissionCount;
    Tick &slot = lastAdmit[rec.lineAddr];
    if (rec.when > slot)
        slot = rec.when;
}

void
PmoSanitizer::onConflictEdge(const ConflictEdgeEvent &)
{
    // Eq. 3 ordering is discharged by construction (whole-line
    // admission snapshots); the edge count documents how much
    // cross-thread conflict the run actually exercised.
    ++edgeCount;
}

bool
PmoSanitizer::covered(const Persist &q) const
{
    if (q.acked)
        return true;
    auto it = lastAdmit.find(q.line);
    return it != lastAdmit.end() && it->second >= q.dispatchTick;
}

std::uint32_t
PmoSanitizer::firstUncovered(std::vector<std::uint32_t> &bucket)
{
    // Drop durable entries from the back (each is erased exactly
    // once over the run, so scanning amortizes to O(1) per persist).
    while (!bucket.empty()) {
        if (!covered(arena[bucket.back()]))
            return bucket.back();
        bucket.pop_back();
    }
    return ~static_cast<std::uint32_t>(0);
}

void
PmoSanitizer::checkEq1(const Persist &p, Tick now)
{
    Strand &strand = coreState(p.core).strands[p.strand];
    while (strand.frontier < p.level) {
        std::uint32_t bad = firstUncovered(strand.levels[strand.frontier]);
        if (bad != ~static_cast<std::uint32_t>(0)) {
            recordViolation(1, p, arena[bad], now);
            return;
        }
        ++strand.frontier;
    }
}

void
PmoSanitizer::checkEq2(const Persist &p, Tick now)
{
    CoreState &cs = coreState(p.core);
    while (cs.epochFrontier < p.epoch) {
        std::uint32_t bad = firstUncovered(cs.epochs[cs.epochFrontier]);
        if (bad != ~static_cast<std::uint32_t>(0)) {
            recordViolation(2, p, arena[bad], now);
            return;
        }
        ++cs.epochFrontier;
    }
}

void
PmoSanitizer::onPrimitiveRetired(const PrimitiveEvent &ev)
{
    if (ev.kind != PrimitiveKind::Clwb)
        return;
    CoreState &cs = coreState(ev.core);
    auto it = cs.bySeq.find(ev.seq);
    if (it == cs.bySeq.end())
        return; // dispatched before the sanitizer attached
    Persist &p = arena[it->second];

    // The flush acknowledgement is the moment this persist became
    // ordered-durable from the core's point of view; every persist
    // the intended PMO places before it must already be durable.
    ++checkedCount;
    checkEq1(p, ev.when);
    checkEq2(p, ev.when);
    p.acked = true;
}

void
PmoSanitizer::recordViolation(unsigned equation, const Persist &later,
                              const Persist &earlier, Tick now)
{
    ++totalViolations;
    if (found.size() >= cfg.maxViolations)
        return;

    Violation v;
    v.equation = equation;
    v.core = later.core;
    v.laterLine = later.line;
    v.earlierLine = earlier.line;
    v.when = now;

    std::ostringstream os;
    if (equation == 1) {
        os << "PMO violation (Eq.1 intra-strand barrier order):\n";
    } else {
        os << "PMO violation (Eq.2 JoinStrand order):\n";
    }
    os << "  later:   CLWB line " << hexAddr(later.line) << " (core "
       << later.core << ", seq " << later.seq
       << ") acknowledged at tick " << now << " [strand "
       << later.strand << ", pb-level " << later.level << ", epoch "
       << later.epoch << "]\n";
    os << "  earlier: CLWB line " << hexAddr(earlier.line) << " (core "
       << earlier.core << ", seq " << earlier.seq
       << ") dispatched at tick " << earlier.dispatchTick
       << " [strand " << earlier.strand << ", pb-level "
       << earlier.level << ", epoch " << earlier.epoch
       << "] -- not yet durable\n";
    if (equation == 1) {
        os << "  edge:    barrier intent at tick "
           << later.levelStartTick << " orders pb-level "
           << earlier.level << " before pb-level " << later.level
           << " within strand " << later.strand << " of core "
           << later.core;
    } else {
        os << "  edge:    join intent at tick " << later.epochStartTick
           << " orders epoch " << earlier.epoch << " before epoch "
           << later.epoch << " on core " << later.core;
    }
    v.trace = os.str();
    found.push_back(std::move(v));
}

std::string
PmoSanitizer::report() const
{
    std::ostringstream os;
    os << "PMO-san: " << totalViolations << " violation(s) across "
       << checkedCount << " checked persist(s), " << admissionCount
       << " admission(s), " << edgeCount << " conflict edge(s)";
    for (const Violation &v : found)
        os << "\n" << v.trace;
    if (totalViolations > found.size()) {
        os << "\n  ... " << (totalViolations - found.size())
           << " further violation(s) suppressed";
    }
    return os.str();
}

} // namespace strand
