/**
 * @file
 * PMO-san: an online checker of the strand-persistency persist
 * memory order (paper §III, Eqs. 1–4).
 *
 * The offline model (src/persist/pmo.hh) validates a finished persist
 * trace against the PMO's transitive closure; PMO-san instead rides
 * the live observer stream and validates each persist *as the
 * hardware completes it*, the persistency analogue of a thread
 * sanitizer. It reconstructs the intended ordering relation from the
 * kIntent* bits the lowering stamps on dispatched ops — which are
 * design-independent, so the same checker runs under all five
 * hardware designs — and checks that the engines acknowledge persists
 * only in linear extensions of that relation:
 *
 *  - Eq. 1 (intra-strand): a persist separated from an earlier one by
 *    a persist-barrier intent (with no NewStrand intent between) may
 *    complete only after the earlier one is durable.
 *  - Eq. 2 (JoinStrand): a persist after a join intent may complete
 *    only after every earlier persist of its thread is durable.
 *  - Eq. 3 (SPA, conflicting stores): satisfied by construction in
 *    this simulator — an admission snapshots the whole line's current
 *    architectural state, so an earlier same-line persist can never
 *    be "overtaken" with stale data. Conflict edges are still
 *    recorded for diagnostics.
 *  - Eq. 4 (transitivity): checking each generating edge at every
 *    completion suffices — a linear order that respects all direct
 *    edges respects their transitive closure.
 *
 * The check is O(1) amortized per event: per-strand barrier-level
 * buckets and per-core join-epoch buckets with monotone frontiers;
 * each tracked persist is visited a constant number of times.
 *
 * "Durable" for an earlier persist q means q's own flush acknowledged
 * OR q's line was admitted to the ADR domain at/after q dispatched (a
 * later CLWB or write-back of the same line covers q's data — the
 * admission is a whole-line snapshot).
 *
 * On violation PMO-san records a causal trace: the later persist, the
 * earlier not-yet-durable one, and the ordering intent (barrier/join
 * dispatch) that connects them. Violations are capped; the total
 * count keeps incrementing.
 */

#ifndef SANITIZER_PMO_SANITIZER_HH
#define SANITIZER_PMO_SANITIZER_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/observer.hh"

namespace strand
{

/** PMO-san tuning. */
struct PmoSanitizerConfig
{
    /** Causal traces kept in full (the count is not capped). */
    std::size_t maxViolations = 16;
};

/**
 * The online PMO checker. Attach via System::addObserver before the
 * run; query ok()/report() after (or during) it.
 */
class PmoSanitizer final : public PersistObserver
{
  public:
    explicit PmoSanitizer(PmoSanitizerConfig config = {})
        : cfg(config)
    {}

    /** One detected ordering violation with its causal trace. */
    struct Violation
    {
        /** 1 or 2: which PMO equation the completion order broke. */
        unsigned equation = 0;
        CoreId core = 0;
        Addr laterLine = 0;
        Addr earlierLine = 0;
        Tick when = 0;
        /** Multi-line causal trace (later:/earlier:/edge:). */
        std::string trace;
    };

    void onPrimitiveDispatched(const PrimitiveEvent &ev) override;
    void onPrimitiveRetired(const PrimitiveEvent &ev) override;
    void onPersistAdmitted(const PersistRecord &rec) override;
    void onConflictEdge(const ConflictEdgeEvent &ev) override;

    /** @return true when no violation has been detected so far. */
    bool ok() const { return totalViolations == 0; }

    /** Total violations detected (including beyond the trace cap). */
    std::uint64_t violationCount() const { return totalViolations; }

    /** The first maxViolations violations, with causal traces. */
    const std::vector<Violation> &violations() const { return found; }

    /** All kept causal traces joined into one printable report. */
    std::string report() const;

    /** @name Exposure counters (how much the run exercised) @{ */
    std::uint64_t persistsChecked() const { return checkedCount; }
    std::uint64_t admissionsSeen() const { return admissionCount; }
    std::uint64_t conflictEdgesSeen() const { return edgeCount; }
    /** @} */

    /** @name Snapshot support (mid-run machine forks) @{ */

    /**
     * The checker is plain data, so capture is a straight copy of
     * the tracking structures; the configuration is fixed wiring.
     */
    struct State;
    State snapshotState() const;
    void restoreState(const State &s);

    /** @} */

  private:
    /** A tracked CLWB from dispatch to flush acknowledgement. */
    struct Persist
    {
        CoreId core = 0;
        Addr line = 0;
        SeqNum seq = 0;
        Tick dispatchTick = 0;
        /** Intended-strand coordinates at dispatch. */
        std::uint64_t strand = 0;
        std::uint32_t level = 0; ///< barrier count within the strand
        std::uint64_t epoch = 0; ///< join count within the core
        /** Dispatch tick of the intent that began level / epoch. */
        Tick levelStartTick = 0;
        Tick epochStartTick = 0;
        bool acked = false;
    };

    /** Barrier-level buckets of one intended strand. */
    struct Strand
    {
        /** Indices (into arena) of not-yet-retired-from-checking
         * persists, bucketed by barrier level. */
        std::vector<std::vector<std::uint32_t>> levels;
        /** All levels below this are fully durable. */
        std::uint32_t frontier = 0;
    };

    struct CoreState
    {
        /** Intended-PMO coordinates of the next dispatch. */
        std::uint64_t strandSeq = 0;
        std::uint32_t pbLevel = 0;
        std::uint64_t jsEpoch = 0;
        Tick levelStartTick = 0;
        Tick epochStartTick = 0;

        std::vector<Strand> strands; ///< indexed by strand seq
        /** Join-epoch buckets (indices into arena). */
        std::vector<std::vector<std::uint32_t>> epochs;
        std::uint64_t epochFrontier = 0;
        /** Dispatch seq → arena index of live tracked persists. */
        std::unordered_map<SeqNum, std::uint32_t> bySeq;
    };

    CoreState &coreState(CoreId core);
    /** @return true once @p q is durable (acked or line admitted at
     * or after its dispatch). */
    bool covered(const Persist &q) const;
    /** First uncovered persist in @p bucket, dropping covered ones;
     * ~0u when the bucket drains empty. */
    std::uint32_t firstUncovered(std::vector<std::uint32_t> &bucket);
    void checkEq1(const Persist &p, Tick now);
    void checkEq2(const Persist &p, Tick now);
    void recordViolation(unsigned equation, const Persist &later,
                         const Persist &earlier, Tick now);

    PmoSanitizerConfig cfg;
    std::vector<Persist> arena;
    std::vector<CoreState> coresState;
    /** Line → tick of its most recent ADR admission. */
    std::unordered_map<Addr, Tick> lastAdmit;

    std::vector<Violation> found;
    std::uint64_t totalViolations = 0;
    std::uint64_t checkedCount = 0;
    std::uint64_t admissionCount = 0;
    std::uint64_t edgeCount = 0;
};

/** Full mutable checker state; see PmoSanitizer::snapshotState(). */
struct PmoSanitizer::State
{
    std::vector<Persist> arena;
    std::vector<CoreState> coresState;
    std::unordered_map<Addr, Tick> lastAdmit;
    std::vector<Violation> found;
    std::uint64_t totalViolations = 0;
    std::uint64_t checkedCount = 0;
    std::uint64_t admissionCount = 0;
    std::uint64_t edgeCount = 0;
};

inline PmoSanitizer::State
PmoSanitizer::snapshotState() const
{
    return {arena,          coresState,   lastAdmit, found,
            totalViolations, checkedCount, admissionCount, edgeCount};
}

inline void
PmoSanitizer::restoreState(const State &s)
{
    arena = s.arena;
    coresState = s.coresState;
    lastAdmit = s.lastAdmit;
    found = s.found;
    totalViolations = s.totalViolations;
    checkedCount = s.checkedCount;
    admissionCount = s.admissionCount;
    edgeCount = s.edgeCount;
}

} // namespace strand

#endif // SANITIZER_PMO_SANITIZER_HH
