#include "core/result_sink.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/env_config.hh"

namespace strand
{

namespace
{

/** JSON string escaping (quotes, backslashes, control chars). */
std::string
jsonEscape(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size() + 2);
    for (char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Deterministic number rendering: integral values (the common case —
 * tick and event counts held in doubles) print exactly, the rest
 * round-trip at 17 significant digits. Identical inputs yield
 * identical bytes, which is what makes SW_JOBS=8 output diffable
 * against SW_JOBS=1.
 */
std::string
jsonNumber(double value)
{
    char buf[40];
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%.0f", value);
    } else if (std::isfinite(value)) {
        std::snprintf(buf, sizeof(buf), "%.17g", value);
    } else {
        return "null";
    }
    return buf;
}

std::string
jsonNumber(std::uint64_t value)
{
    return std::to_string(value);
}

/** Tiny append-only writer producing 2-space-indented JSON. */
class JsonWriter
{
  public:
    void
    open(char bracket)
    {
        // Pad only at line starts: an open right after item("name")
        // continues that line ("name": {).
        if (out.empty() || out.back() == '\n')
            pad();
        out += bracket;
        out += '\n';
        ++depth;
        first.push_back(true);
    }

    void
    close(char bracket)
    {
        out += '\n';
        --depth;
        first.pop_back();
        pad();
        out += bracket;
    }

    /** Begin a field/element; value content follows inline. */
    void
    item(const char *name = nullptr)
    {
        if (!first.back())
            out += ",\n";
        first.back() = false;
        pad();
        if (name) {
            out += '"';
            out += name;
            out += "\": ";
        }
    }

    void
    field(const char *name, const std::string &value)
    {
        item(name);
        out += '"';
        out += jsonEscape(value);
        out += '"';
    }

    void
    fieldRaw(const char *name, const std::string &raw)
    {
        item(name);
        out += raw;
    }

    /**
     * Without this overload a string literal would convert to bool
     * (a standard conversion outranks const char* -> std::string)
     * and render as true/false.
     */
    void
    field(const char *name, const char *value)
    {
        field(name, std::string(value));
    }

    void
    field(const char *name, bool value)
    {
        item(name);
        out += value ? "true" : "false";
    }

    std::string out;

  private:
    void
    pad()
    {
        out.append(static_cast<std::size_t>(depth) * 2, ' ');
    }

    int depth = 0;
    std::vector<bool> first{};
};

void
writeMetrics(JsonWriter &json, const RunMetrics &metrics)
{
    json.item("metrics");
    json.open('{');
    json.fieldRaw("run_ticks", jsonNumber(metrics.runTicks));
    json.fieldRaw("total_cycles", jsonNumber(metrics.totalCycles));
    json.fieldRaw("clwbs", jsonNumber(metrics.clwbs));
    json.fieldRaw("persist_stalls", jsonNumber(metrics.persistStalls));
    json.fieldRaw("all_stalls", jsonNumber(metrics.allStalls));
    json.fieldRaw("snoop_stalls", jsonNumber(metrics.snoopStalls));
    json.fieldRaw("ckc", jsonNumber(metrics.ckc));
    json.item("lowering");
    json.open('{');
    json.fieldRaw("clwbs", jsonNumber(metrics.lowering.clwbs));
    json.fieldRaw("stores", jsonNumber(metrics.lowering.stores));
    json.fieldRaw("loads", jsonNumber(metrics.lowering.loads));
    json.fieldRaw("barriers", jsonNumber(metrics.lowering.barriers));
    json.fieldRaw("drains", jsonNumber(metrics.lowering.drains));
    json.fieldRaw("log_entries",
                  jsonNumber(metrics.lowering.logEntries));
    json.fieldRaw("commits", jsonNumber(metrics.lowering.commits));
    json.close('}');
    json.close('}');
}

void
writeCrash(JsonWriter &json, const CellResult &cell)
{
    const CrashCellResult &crash = cell.crash;
    json.item("crash");
    json.open('{');
    json.fieldRaw("torn_words",
                  cell.tornWords >= wordsPerLine
                      ? std::string("null")
                      : jsonNumber(std::uint64_t(cell.tornWords)));
    json.fieldRaw("points_tested", jsonNumber(std::uint64_t(
                                       crash.pointsTested)));
    json.fieldRaw("points_passed", jsonNumber(std::uint64_t(
                                       crash.pointsPassed)));
    json.fieldRaw("points_requested",
                  jsonNumber(std::uint64_t(crash.pointsRequested)));
    json.fieldRaw("points_injected",
                  jsonNumber(std::uint64_t(crash.pointsInjected)));
    json.fieldRaw("rolled_back", jsonNumber(crash.totalRolledBack));
    json.fieldRaw("replayed", jsonNumber(crash.totalReplayed));
    // RecoveryReport surface: what recovery itself concluded at the
    // injected points, not just whether the oracle agreed.
    json.fieldRaw("torn_entries_skipped",
                  jsonNumber(crash.totalTornSkipped));
    json.fieldRaw("corrupt_quarantined",
                  jsonNumber(crash.totalCorruptQuarantined));
    json.fieldRaw("poisoned_quarantined",
                  jsonNumber(crash.totalPoisonedQuarantined));
    json.fieldRaw("quarantined_addrs",
                  jsonNumber(crash.totalQuarantinedAddrs));
    json.item("verdicts");
    json.open('{');
    json.fieldRaw("full", jsonNumber(std::uint64_t(crash.verdictFull)));
    json.fieldRaw("degraded",
                  jsonNumber(std::uint64_t(crash.verdictDegraded)));
    json.fieldRaw("failed",
                  jsonNumber(std::uint64_t(crash.verdictFailed)));
    json.close('}');
    json.item("media");
    if (!cell.media.any()) {
        json.out += "null";
    } else {
        json.open('{');
        json.fieldRaw("poison_lines", jsonNumber(std::uint64_t(
                                          cell.media.poisonLines)));
        json.fieldRaw("bit_flips",
                      jsonNumber(std::uint64_t(cell.media.bitFlips)));
        json.fieldRaw("drop_admissions",
                      jsonNumber(std::uint64_t(
                          cell.media.dropAdmissions)));
        json.fieldRaw("seed", jsonNumber(cell.media.seed));
        json.close('}');
    }
    json.item("failures");
    if (crash.failures.empty()) {
        json.out += "[]";
    } else {
        json.open('[');
        for (const CrashPointResult &failure : crash.failures) {
            json.item();
            json.open('{');
            json.fieldRaw("tick", jsonNumber(std::uint64_t(
                                      failure.when)));
            json.field("violation", failure.violation);
            json.close('}');
        }
        json.close(']');
    }
    json.close('}');
}

void
writeFuzz(JsonWriter &json, const CellResult &cell)
{
    const FuzzCellResult &fuzz = cell.fuzz;
    json.item("fuzz");
    json.open('{');
    json.fieldRaw("trials", jsonNumber(std::uint64_t(fuzz.trials)));
    json.fieldRaw("failing_trials",
                  jsonNumber(std::uint64_t(fuzz.failingTrials)));
    json.fieldRaw("points_checked", jsonNumber(fuzz.pointsChecked));
    json.fieldRaw("queries", jsonNumber(fuzz.queries));
    json.fieldRaw("holds", jsonNumber(fuzz.holds));
    json.item("failures");
    if (fuzz.failures.empty()) {
        json.out += "[]";
    } else {
        json.open('[');
        for (const FuzzFailure &failure : fuzz.failures) {
            json.item();
            json.open('{');
            json.fieldRaw("trial_seed", jsonNumber(failure.trialSeed));
            json.fieldRaw("crash_tick",
                          jsonNumber(std::uint64_t(failure.crashTick)));
            json.fieldRaw("torn_words",
                          failure.tornWords >= wordsPerLine
                              ? std::string("null")
                              : jsonNumber(
                                    std::uint64_t(failure.tornWords)));
            json.fieldRaw("raw_decisions",
                          jsonNumber(
                              std::uint64_t(failure.rawDecisions)));
            json.fieldRaw("shrunk_decisions",
                          jsonNumber(
                              std::uint64_t(failure.shrunkDecisions)));
            json.field("replay_diverged", failure.replayDiverged);
            json.field("violation", failure.violation);
            json.field("repro", failure.reproPath);
            json.close('}');
        }
        json.close(']');
    }
    json.close('}');
}

/**
 * The top-level `host` block: wall-clock and throughput for the run
 * that produced this document. wall_ms sums the per-cell wall times
 * (aggregate worker compute, not elapsed time), so the rates are
 * per-worker throughput and comparable across SW_JOBS values. This is
 * the only nondeterministic part of the document — determinism checks
 * diff `.cells` (or render with includeHost=false) and stay clean.
 */
void
writeHost(JsonWriter &json, const SweepResult &result)
{
    double wallMs = 0;
    std::uint64_t events = 0;
    std::uint64_t simOps = 0;
    for (const CellResult &cell : result.cells) {
        wallMs += cell.host.wallMs;
        events += cell.host.events;
        simOps += cell.host.simOps;
    }
    auto rate = [wallMs](std::uint64_t count) {
        return wallMs > 0 ? static_cast<double>(count) * 1e3 / wallMs
                          : 0.0;
    };
    json.item("host");
    json.open('{');
    json.fieldRaw("wall_ms", jsonNumber(wallMs));
    json.fieldRaw("events", jsonNumber(events));
    json.fieldRaw("sim_ops", jsonNumber(simOps));
    json.fieldRaw("events_per_sec", jsonNumber(rate(events)));
    json.fieldRaw("sim_ops_per_sec", jsonNumber(rate(simOps)));
    json.item("cells");
    if (result.cells.empty()) {
        json.out += "[]";
    } else {
        json.open('[');
        for (const CellResult &cell : result.cells) {
            json.item();
            json.open('{');
            json.field("key", cell.key);
            json.fieldRaw("wall_ms", jsonNumber(cell.host.wallMs));
            json.fieldRaw("events", jsonNumber(cell.host.events));
            json.fieldRaw("sim_ops", jsonNumber(cell.host.simOps));
            json.close('}');
        }
        json.close(']');
    }
    json.close('}');
}

} // namespace

std::string
sweepJson(const SweepResult &result, bool includeHost)
{
    JsonWriter json;
    json.open('{');
    json.field("bench", result.name);
    json.fieldRaw("schema", "3");
    json.item("cells");
    if (result.cells.empty()) {
        json.out += "[]";
    } else {
        json.open('[');
        for (const CellResult &cell : result.cells) {
            json.item();
            json.open('{');
            json.field("kind", cell.kind == CellKind::Timing
                                   ? "timing"
                                   : cell.kind == CellKind::Crash
                                         ? "crash"
                                         : "fuzz");
            json.field("workload", cell.workload);
            json.field("design",
                       std::string(hwDesignName(cell.design)));
            json.field("model", std::string(
                                    persistencyModelName(cell.model)));
            json.field("log_style", cell.logStyle == LogStyle::Undo
                                        ? "undo"
                                        : "redo");
            json.field("variant", cell.variant);
            json.field("baseline", cell.baseline);
            json.field("ok", cell.ok);
            json.field("error", cell.error);
            if (cell.kind == CellKind::Timing) {
                json.fieldRaw("speedup", jsonNumber(cell.speedup));
                writeMetrics(json, cell.metrics);
            } else if (cell.kind == CellKind::Crash) {
                writeCrash(json, cell);
            } else {
                writeFuzz(json, cell);
            }
            json.close('}');
        }
        json.close(']');
    }
    if (includeHost)
        writeHost(json, result);
    json.close('}');
    json.out += '\n';
    return std::move(json.out);
}

std::string
writeSweepJson(const SweepResult &result)
{
    namespace fs = std::filesystem;
    fs::path dir(envConfig().outDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec),
            "cannot create result directory {}: {}", dir.string(),
            ec.message());
    fs::path path = dir / (result.name + ".json");
    std::ofstream file(path);
    fatalIf(!file, "cannot open {} for writing", path.string());
    file << sweepJson(result);
    file.close();
    fatalIf(!file, "failed writing {}", path.string());
    return path.string();
}

unsigned
printPivot(const SweepResult &result, const PivotOptions &options)
{
    panicIf(!options.column || !options.value,
            "printPivot requires column and value hooks");

    // First-appearance orders over the included cells.
    std::vector<std::string> rows;
    std::vector<std::string> columns;
    // (row, column) -> value; flat search keeps ordering explicit.
    std::vector<std::pair<std::pair<std::string, std::string>, double>>
        values;
    for (const CellResult &cell : result.cells) {
        if (options.include && !options.include(cell))
            continue;
        std::string row = cell.workload;
        std::string column = options.column(cell);
        if (std::find(rows.begin(), rows.end(), row) == rows.end())
            rows.push_back(row);
        if (std::find(columns.begin(), columns.end(), column) ==
            columns.end()) {
            columns.push_back(column);
        }
        values.push_back({{row, column},
                          cell.ok ? options.value(cell)
                                  : std::nan("")});
    }

    auto lookup = [&](const std::string &row,
                      const std::string &column) {
        for (const auto &[coords, value] : values)
            if (coords.first == row && coords.second == column)
                return value;
        return std::nan("");
    };

    const unsigned width =
        options.workloadWidth +
        static_cast<unsigned>(columns.size()) *
            (options.columnWidth + 1);
    auto rule = [&] {
        for (unsigned i = 0; i < width; ++i)
            std::fputc('-', stdout);
        std::fputc('\n', stdout);
    };

    rule();
    std::printf("%-*s", options.workloadWidth, "workload");
    for (const std::string &column : columns)
        std::printf(" %*s", options.columnWidth, column.c_str());
    std::printf("\n");
    rule();

    auto printValue = [&](double value) {
        if (std::isnan(value)) {
            std::printf(" %*s", options.columnWidth, "-");
        } else {
            std::fputc(' ', stdout);
            std::printf(options.valueFormat, value);
        }
    };

    for (const std::string &row : rows) {
        std::printf("%-*s", options.workloadWidth, row.c_str());
        for (const std::string &column : columns)
            printValue(lookup(row, column));
        std::printf("\n");
    }
    rule();

    if (options.geomeanRow && !rows.empty()) {
        std::printf("%-*s", options.workloadWidth, options.meanLabel);
        for (const std::string &column : columns) {
            double logSum = 0;
            unsigned n = 0;
            bool usable = true;
            for (const std::string &row : rows) {
                double value = lookup(row, column);
                if (std::isnan(value) || value <= 0) {
                    usable = false;
                    break;
                }
                logSum += std::log(value);
                ++n;
            }
            printValue(usable && n
                           ? std::exp(logSum / static_cast<double>(n))
                           : std::nan(""));
        }
        std::printf("\n");
    }
    return width;
}

} // namespace strand
