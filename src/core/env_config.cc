#include "core/env_config.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "mem/address_map.hh"
#include "sim/logging.hh"

namespace strand
{

namespace
{

/**
 * Parse @p name as an unsigned integer in [minValue, maxValue].
 * Unset or empty means "not configured"; anything else must parse
 * completely or the run dies with a message naming the variable.
 */
std::optional<unsigned>
parseUnsigned(const std::function<const char *(const char *)> &get,
              const char *name, unsigned minValue,
              unsigned maxValue = ~0u)
{
    const char *value = get(name);
    if (!value || !*value)
        return std::nullopt;
    char *end = nullptr;
    long long parsed = std::strtoll(value, &end, 10);
    fatalIf(end == value || *end != '\0',
            "{}='{}' is not an integer", name, value);
    fatalIf(parsed < 0, "{}={} must not be negative", name, parsed);
    fatalIf(parsed < static_cast<long long>(minValue) ||
                parsed > static_cast<long long>(maxValue),
            "{}={} out of range [{}, {}]", name, parsed, minValue,
            maxValue);
    return static_cast<unsigned>(parsed);
}

/**
 * Parse @p name as a 64-bit seed. Base auto-detection accepts plain
 * decimal and 0x-prefixed hex; anything else dies loudly.
 */
std::optional<std::uint64_t>
parseSeed(const std::function<const char *(const char *)> &get,
          const char *name)
{
    const char *value = get(name);
    if (!value || !*value)
        return std::nullopt;
    fatalIf(value[0] == '-', "{}='{}' must not be negative", name,
            value);
    char *end = nullptr;
    unsigned long long parsed = std::strtoull(value, &end, 0);
    fatalIf(end == value || *end != '\0',
            "{}='{}' is not an integer seed", name, value);
    return static_cast<std::uint64_t>(parsed);
}

} // namespace

EnvConfig
parseEnvConfig(const std::function<const char *(const char *)> &get)
{
    EnvConfig config;
    config.ops = parseUnsigned(get, "SW_OPS", 1);
    config.threads = parseUnsigned(get, "SW_THREADS", 1);
    config.crashPoints = parseUnsigned(get, "SW_CRASH_POINTS", 0);
    config.jobs = parseUnsigned(get, "SW_JOBS", 1);
    config.shards = parseUnsigned(get, "SW_SHARDS", 1);
    config.windowTicks = parseUnsigned(get, "SW_WINDOW_TICKS", 1);
    // Admitting all words of a line is not torn at all; cap at 7.
    config.tornWords =
        parseUnsigned(get, "SW_TORN_WORDS", 0, wordsPerLine - 1);
    config.crashSeed = parseSeed(get, "SW_CRASH_SEED");
    config.fuzzTrials = parseUnsigned(get, "SW_FUZZ_TRIALS", 0);
    config.fuzzSeed = parseSeed(get, "SW_FUZZ_SEED");
    if (auto flag = parseUnsigned(get, "SW_PMOSAN", 0, 1))
        config.pmosan = *flag != 0;
    if (auto flag = parseUnsigned(get, "SW_CRASH_FORK", 0, 1))
        config.crashFork = *flag != 0;
    config.fuzzForkBranch =
        parseUnsigned(get, "SW_FUZZ_FORK_BRANCH", 0);
    // Media-fault intensities are per crash point; the admission
    // ring is 8 deep, so more than 8 of anything cannot land.
    config.mediaPoison = parseUnsigned(get, "SW_MEDIA_POISON", 0, 8);
    config.mediaFlips = parseUnsigned(get, "SW_MEDIA_FLIPS", 0, 8);
    config.mediaDrop = parseUnsigned(get, "SW_MEDIA_DROP", 0, 8);
    config.mediaSeed = parseSeed(get, "SW_MEDIA_SEED");
    config.logLevel = parseUnsigned(get, "SW_LOG", 0, 2);
    if (const char *value = get("SW_OUT_DIR"); value && *value)
        config.outDir = value;
    return config;
}

const std::vector<EnvKnob> &
envKnobs()
{
    static const std::vector<EnvKnob> knobs = {
        {"SW_OPS", ">= 1", "per-bench default",
         "operations per program thread"},
        {"SW_THREADS", ">= 1", "8 (Table I)", "program threads"},
        {"SW_CRASH_POINTS", ">= 0", "0 (off)",
         "crash points injected per validated experiment"},
        {"SW_JOBS", ">= 1", "hardware concurrency",
         "sweep worker threads (1 = serial; output identical)"},
        {"SW_SHARDS", ">= 1", "1 (serial loop)",
         "PDES domains for sharded runs (bit-identical results)"},
        {"SW_WINDOW_TICKS", ">= 1", "partition lookahead",
         "lock-step window width for the sharded run loop"},
        {"SW_TORN_WORDS", "0..7", "unset (no tearing)",
         "admit only this many words of the final line per crash"},
        {"SW_CRASH_SEED", "u64 (0x hex ok)", "fixed default",
         "seed for random crash-tick selection"},
        {"SW_FUZZ_TRIALS", ">= 0", "per-bench default",
         "fuzz trials per campaign cell (0 disables cells)"},
        {"SW_FUZZ_SEED", "u64 (0x hex ok)", "fixed default",
         "campaign seed for fuzz trials"},
        {"SW_PMOSAN", "0/1", "0 (off)",
         "attach the online PMO-san persist-order checker"},
        {"SW_CRASH_FORK", "0/1", "0 (two-run)",
         "forked-snapshot crash exploration (one warm run)"},
        {"SW_FUZZ_FORK_BRANCH", ">= 0", "0 (off)",
         "extra schedule suffixes forked per fuzz trial"},
        {"SW_MEDIA_POISON", "0..8", "bench default",
         "max poisoned lines injected per crash point"},
        {"SW_MEDIA_FLIPS", "0..8", "bench default",
         "max in-line bit flips injected per crash point"},
        {"SW_MEDIA_DROP", "0..8", "bench default",
         "max trailing ADR admissions dropped per crash point"},
        {"SW_MEDIA_SEED", "u64 (0x hex ok)", "fixed default",
         "seed of the media-fault stream"},
        {"SW_LOG", "0..2", "1 (normal)",
         "console log level (2 prints the PDES partition)"},
        {"SW_OUT_DIR", "path", "bench/out",
         "directory for JSON result files"},
    };
    return knobs;
}

std::string
envKnobTable()
{
    std::string out = "SW_* environment knobs:\n";
    std::size_t nameWidth = 0;
    std::size_t rangeWidth = 0;
    for (const EnvKnob &knob : envKnobs()) {
        nameWidth = std::max(nameWidth, std::strlen(knob.name));
        rangeWidth =
            std::max(rangeWidth, std::strlen(knob.constraints));
    }
    for (const EnvKnob &knob : envKnobs()) {
        out += "  ";
        out += knob.name;
        out.append(nameWidth - std::strlen(knob.name) + 2, ' ');
        out += knob.constraints;
        out.append(rangeWidth - std::strlen(knob.constraints) + 2, ' ');
        out += knob.summary;
        out += " [default: ";
        out += knob.fallback;
        out += "]\n";
    }
    return out;
}

const EnvConfig &
envConfig()
{
    static const EnvConfig config = [] {
        EnvConfig parsed = parseEnvConfig(
            [](const char *name) { return std::getenv(name); });
        // The log level is process-global; apply it as soon as the
        // environment is first consulted so partition logging and
        // the like honor SW_LOG without per-caller plumbing.
        if (parsed.logLevel) {
            setLogLevel(*parsed.logLevel == 0   ? LogLevel::Quiet
                        : *parsed.logLevel == 1 ? LogLevel::Normal
                                                : LogLevel::Verbose);
        }
        return parsed;
    }();
    return config;
}

unsigned
envJobs()
{
    if (envConfig().jobs)
        return *envConfig().jobs;
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

unsigned
envShards()
{
    return envConfig().shards.value_or(1);
}

} // namespace strand
