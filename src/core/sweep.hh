/**
 * @file
 * Sweep orchestration: declarative experiment matrices executed on a
 * worker-thread pool.
 *
 * Every figure/table bench reproduces one paper artifact by running a
 * matrix of (workload x hardware design x persistency model) cells.
 * A SweepSpec enumerates those cells declaratively — workload,
 * design, model, per-cell ExperimentConfig overrides, an optional
 * baseline cell for speedup columns — and runSweep() executes them.
 *
 * Cells are embarrassingly parallel: each one builds a fully
 * self-contained simulation (its own EventQueue, System, Rng, and
 * stats tree) and only *reads* the shared RecordedWorkload, so the
 * scheduler simply hands cell indices to SW_JOBS worker threads
 * (default: hardware concurrency; 1 reproduces the legacy serial
 * order bit for bit on the main thread). Results land in spec order
 * regardless of execution order, so table and JSON output are
 * byte-identical across SW_JOBS values.
 *
 * A cell that panics does not wedge the pool: the panic is caught,
 * tagged with the cell's label, and recorded on its CellResult; the
 * remaining cells still run.
 */

#ifndef CORE_SWEEP_HH
#define CORE_SWEEP_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "crash/crash_harness.hh"
#include "fuzz/campaign.hh"

namespace strand
{

/** What a sweep cell runs. */
enum class CellKind
{
    Timing, ///< runExperiment: the timing stack, RunMetrics out.
    Crash,  ///< runCrashCell: crash-point fault injection.
    Fuzz,   ///< runFuzzCell: seeded adversarial-schedule fuzzing.
};

/** One cell of an experiment matrix. */
struct SweepCell
{
    CellKind kind = CellKind::Timing;
    /** Shared read-only across cells; recorded once per workload. */
    std::shared_ptr<const RecordedWorkload> recorded;
    HwDesign design = HwDesign::StrandWeaver;
    PersistencyModel model = PersistencyModel::Sfr;
    /** Per-cell overrides (engine geometry, caches, log style...). */
    ExperimentConfig config;
    /** Timing cells: panic on post-run invariant violations. */
    bool validate = true;
    /** Crash cells: injected crash-point budget. */
    unsigned crashPoints = 16;
    /** Crash cells: torn-line injection (see CrashHarnessConfig). */
    unsigned tornWords = wordsPerLine;
    /**
     * Crash cells: media-fault injection at every crash point
     * (poison, bit flips, partial ADR drain — see media_faults.hh).
     * All-zero (the default) disables the fault model.
     */
    MediaFaultConfig media;
    /**
     * Crash cells: pin the harness mode (forked vs two-run)
     * regardless of SW_CRASH_FORK; unset defers to the knob. Used by
     * the crash_matrix fork-speedup probe cells, which must compare
     * the two modes inside one sweep.
     */
    std::optional<bool> crashFork;
    /**
     * Crash cells: run the forked mode's mid-run snapshot
     * determinism self-check (see CrashHarnessConfig). On by
     * default; the fork-speedup probe turns it off so its timing
     * measures only the forked-snapshot payoff.
     */
    bool crashVerifyMidrunFork = true;
    /**
     * Fuzz cells: the campaign configuration. The workload comes
     * from fuzz.base.kind (fuzz trials record their own workload per
     * trial seed, so `recorded` stays null); the effective campaign
     * seed is fuzz.seed remixed with the cell key, keeping sibling
     * cells' schedules independent while the whole sweep remains a
     * pure function of one seed.
     */
    FuzzCellConfig fuzz;
    /**
     * Extra coordinate distinguishing cells that share (workload,
     * design, model) — e.g. "4x4" strand-buffer geometry, "redo",
     * "no-interlocks". Empty for plain cells.
     */
    std::string variant;
    /**
     * key() of the cell this one is normalized to for speedup
     * columns; empty means no baseline. A cell may name itself
     * (speedup 1.0), which benches use for baseline columns.
     */
    std::string baseline;
    /** Label override for synthetic traces; defaults to the
     * recorded workload's registered name. */
    std::string workloadLabel;

    /** The workload coordinate as printed and keyed. */
    std::string workload() const;

    /** Unique cell coordinates: workload/design/model[/variant]. */
    std::string key() const;
};

/** Outcome of one cell, coordinates included. */
struct CellResult
{
    CellKind kind = CellKind::Timing;
    std::string workload;
    HwDesign design = HwDesign::StrandWeaver;
    PersistencyModel model = PersistencyModel::Sfr;
    LogStyle logStyle = LogStyle::Undo;
    std::string variant;
    std::string key;
    std::string baseline;
    /** False when the cell panicked; error holds the message. */
    bool ok = false;
    std::string error;
    /** Timing cells. */
    RunMetrics metrics;
    /** runTicks of baseline over this cell; 0 without a baseline. */
    double speedup = 0.0;
    /** Crash cells. */
    CrashCellResult crash;
    /** Crash cells: torn-word setting (>= wordsPerLine: whole lines). */
    unsigned tornWords = wordsPerLine;
    /** Crash cells: the media-fault configuration (any() false: off). */
    MediaFaultConfig media;
    /** Fuzz cells. */
    FuzzCellResult fuzz;

    /**
     * Host-side throughput observability (the schema-2 `host`
     * block). wallMs is measured and therefore nondeterministic;
     * events and simOps are simulation-side counts and identical for
     * identical seeds.
     */
    struct Host
    {
        double wallMs = 0;
        std::uint64_t events = 0;
        std::uint64_t simOps = 0;
    };
    Host host;
};

/** A declarative experiment matrix. */
struct SweepSpec
{
    /** Bench name; the JSON sink writes <outDir>/<name>.json. */
    std::string name;
    std::vector<SweepCell> cells;
    /** Worker threads; 0 defers to SW_JOBS / hardware concurrency. */
    unsigned jobs = 0;

    /** Append a cell; returns it for further tweaking. */
    SweepCell &
    add(SweepCell cell)
    {
        cells.push_back(std::move(cell));
        return cells.back();
    }

    /** Append a Timing cell with the common coordinates. */
    SweepCell &addTiming(std::shared_ptr<const RecordedWorkload> rec,
                         HwDesign design, PersistencyModel model,
                         std::string baseline = "");

    /** Append a Crash cell with the common coordinates. */
    SweepCell &addCrash(std::shared_ptr<const RecordedWorkload> rec,
                        HwDesign design, PersistencyModel model,
                        unsigned crashPoints);

    /** Append a Fuzz cell; @p campaign.base carries the coordinates. */
    SweepCell &addFuzz(const FuzzCellConfig &campaign);
};

/** All cell outcomes, in spec order. */
struct SweepResult
{
    std::string name;
    /** Worker threads actually used (not part of the JSON output). */
    unsigned jobs = 1;
    std::vector<CellResult> cells;

    /** @return the cell with coordinates @p key, or nullptr. */
    const CellResult *find(const std::string &key) const;

    /** @return true when every cell completed without panicking. */
    bool allOk() const;

    /** Keys of cells that panicked. */
    std::vector<std::string> failedKeys() const;
};

/**
 * Execute every cell of @p spec and resolve baseline speedups.
 * Deterministic: the result (and any JSON rendered from it) is
 * byte-identical for every jobs count.
 */
SweepResult runSweep(const SweepSpec &spec);

/** Record a workload for cell sharing (shared_ptr-wrapped). */
std::shared_ptr<const RecordedWorkload>
recordShared(WorkloadKind kind, const WorkloadParams &params);

} // namespace strand

#endif // CORE_SWEEP_HH
