/**
 * @file
 * Umbrella header: the public API of the StrandWeaver reproduction.
 *
 * Pull in this single header to get:
 *  - the strand persistency primitives and formal model
 *    (persist/pmo.hh),
 *  - the five persist-engine hardware designs (persist/design.hh),
 *  - the full-system simulator (core/system.hh),
 *  - the language-level logging runtime: recorder, lowering,
 *    recovery (runtime/...),
 *  - the Table II workloads (workloads/workload.hh),
 *  - the experiment driver used by the table/figure harnesses
 *    (core/experiment.hh).
 */

#ifndef CORE_STRANDWEAVER_HH
#define CORE_STRANDWEAVER_HH

#include "core/experiment.hh"
#include "core/system.hh"
#include "persist/design.hh"
#include "persist/pmo.hh"
#include "runtime/instrumentor.hh"
#include "runtime/recorder.hh"
#include "runtime/recovery.hh"
#include "workloads/workload.hh"

#endif // CORE_STRANDWEAVER_HH
