/**
 * @file
 * Partitioning of a simulated machine into PDES domains.
 *
 * Components carry a domain-affinity tag (SimObject::domainAffinity):
 * per-core components are "core<N>" and the shared fabric is
 * "shared". A DomainPartitionBuilder collects the tagged components
 * plus the declared communication edges between affinity groups, and
 * finalize() resolves them into effective domains with a union-find
 * over zero-lookahead edges: two groups that exchange synchronous
 * (same-tick) calls cannot be advanced independently by a
 * conservative windowed engine — any window width would let a message
 * land inside the window that produced it — so they are fused into
 * one domain, and the fusion is logged with the reason.
 *
 * The production StrandWeaver component graph communicates
 * exclusively through MemPort mailboxes (core loads/stores, engine
 * flushes, hierarchy<->controller packets), and every port leg
 * declares a latency >= 1 tick — same-tick replies are illegal by
 * construction (mem/port.hh). computeSystemPartition() therefore
 * yields 1 + nCores separate classes ("shared" plus one per core)
 * with no fusions, and the window is the minimum declared port-leg
 * latency across surviving cross-domain edges. The surviving edges
 * (with their port-declared lookaheads) and the resulting window are
 * recorded in DomainPartition::crossEdges and logged at Verbose
 * (SW_LOG=2), so the output explains the partition either way.
 */

#ifndef CORE_DOMAIN_PARTITION_HH
#define CORE_DOMAIN_PARTITION_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace strand
{

class System;

/** One logged fusion of two affinity groups into the same domain. */
struct DomainFusion
{
    /** Affinity tags of the fused groups. */
    std::string groupA;
    std::string groupB;
    /** Why the groups cannot be advanced independently. */
    std::string reason;
};

/** One communication edge that survived between distinct domains. */
struct DomainEdge
{
    /** Affinity tags of the communicating groups (a -> b). */
    std::string a;
    std::string b;
    /** Port-declared minimum latency of the path, in ticks. */
    Tick lookahead = 0;
    /** The call path / port leg responsible. */
    std::string why;
};

/** The resolved domain layout for one machine. */
struct DomainPartition
{
    /** What the caller asked for (SW_SHARDS). */
    unsigned requestedShards = 1;

    /**
     * Component instance names per effective domain. Domains are
     * ordered by their smallest member affinity tag, so the layout
     * is deterministic for a given machine.
     */
    std::vector<std::vector<std::string>> domains;

    /** Affinity tag of each effective domain (same order). */
    std::vector<std::string> domainTags;

    /** Every zero-lookahead fusion that reduced the domain count. */
    std::vector<DomainFusion> fusions;

    /**
     * Every declared edge that still crosses distinct effective
     * domains, with its port-declared lookahead — the data the
     * window is derived from (logged at Verbose).
     */
    std::vector<DomainEdge> crossEdges;

    /**
     * Window width a conservative engine may use: the minimum
     * lookahead over surviving cross-domain edges, or the builder's
     * default when every edge fused away.
     */
    Tick windowTicks = 0;

    unsigned
    effectiveDomains() const
    {
        return static_cast<unsigned>(domains.size());
    }
};

/**
 * Collects tagged components and inter-group edges, then resolves
 * them into a DomainPartition.
 */
class DomainPartitionBuilder
{
  public:
    /** Register a component under its affinity tag. */
    void addComponent(std::string name, std::string affinity);

    /**
     * Declare a (symmetric) communication edge between two affinity
     * groups. @p lookahead is the minimum modeled latency of the
     * path; zero means the groups call each other synchronously and
     * must fuse — @p why records the call path responsible.
     */
    void addEdge(const std::string &a, const std::string &b,
                 Tick lookahead, std::string why);

    /**
     * Resolve the graph. Groups connected by zero-lookahead edges
     * fuse (each first fusion between two classes is logged); the
     * surviving classes become effective domains, capped at
     * @p requestedShards by deterministic round-robin packing.
     * @p defaultWindow is used when no positive-lookahead edge
     * survives between distinct domains (e.g. everything fused).
     */
    DomainPartition finalize(unsigned requestedShards,
                             Tick defaultWindow) const;

  private:
    struct Component
    {
        std::string name;
        std::string affinity;
    };

    struct GroupEdge
    {
        std::string a;
        std::string b;
        Tick lookahead;
        std::string why;
    };

    std::vector<Component> components;
    std::vector<GroupEdge> groupEdges;
};

/**
 * Partition a live System for @p shards PDES domains: walks the
 * machine's affinity tags and declares the production communication
 * edges (with their honest lookaheads) before resolving.
 */
DomainPartition computeSystemPartition(System &sys, unsigned shards);

} // namespace strand

#endif // CORE_DOMAIN_PARTITION_HH
