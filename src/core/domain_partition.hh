/**
 * @file
 * Partitioning of a simulated machine into PDES domains.
 *
 * Components carry a domain-affinity tag (SimObject::domainAffinity):
 * per-core components are "core<N>" and the shared fabric is
 * "shared". A DomainPartitionBuilder collects the tagged components
 * plus the declared communication edges between affinity groups, and
 * finalize() resolves them into effective domains with a union-find
 * over zero-lookahead edges: two groups that exchange synchronous
 * (same-tick) calls cannot be advanced independently by a
 * conservative windowed engine — any window width would let a message
 * land inside the window that produced it — so they are fused into
 * one domain, and the fusion is logged with the reason.
 *
 * The production StrandWeaver component graph communicates through
 * synchronous zero-latency calls (Core -> Hierarchy::tryStore/
 * tryLoad/tryFlush mutate shared MSHR state at T+0; the hierarchy
 * hits MemController::tryRequest back-pressure synchronously), so
 * computeSystemPartition() fuses every core group with the shared
 * fabric and the effective domain count is 1 regardless of the
 * requested SW_SHARDS. The log makes that honest and inspectable; a
 * future mailboxed request path would remove the zero-lookahead
 * edges and unlock real sharding without touching this partitioner.
 */

#ifndef CORE_DOMAIN_PARTITION_HH
#define CORE_DOMAIN_PARTITION_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace strand
{

class System;

/** One logged fusion of two affinity groups into the same domain. */
struct DomainFusion
{
    /** Affinity tags of the fused groups. */
    std::string groupA;
    std::string groupB;
    /** Why the groups cannot be advanced independently. */
    std::string reason;
};

/** The resolved domain layout for one machine. */
struct DomainPartition
{
    /** What the caller asked for (SW_SHARDS). */
    unsigned requestedShards = 1;

    /**
     * Component instance names per effective domain. Domains are
     * ordered by their smallest member affinity tag, so the layout
     * is deterministic for a given machine.
     */
    std::vector<std::vector<std::string>> domains;

    /** Affinity tag of each effective domain (same order). */
    std::vector<std::string> domainTags;

    /** Every zero-lookahead fusion that reduced the domain count. */
    std::vector<DomainFusion> fusions;

    /**
     * Window width a conservative engine may use: the minimum
     * lookahead over surviving cross-domain edges, or the builder's
     * default when every edge fused away.
     */
    Tick windowTicks = 0;

    unsigned
    effectiveDomains() const
    {
        return static_cast<unsigned>(domains.size());
    }
};

/**
 * Collects tagged components and inter-group edges, then resolves
 * them into a DomainPartition.
 */
class DomainPartitionBuilder
{
  public:
    /** Register a component under its affinity tag. */
    void addComponent(std::string name, std::string affinity);

    /**
     * Declare a (symmetric) communication edge between two affinity
     * groups. @p lookahead is the minimum modeled latency of the
     * path; zero means the groups call each other synchronously and
     * must fuse — @p why records the call path responsible.
     */
    void addEdge(const std::string &a, const std::string &b,
                 Tick lookahead, std::string why);

    /**
     * Resolve the graph. Groups connected by zero-lookahead edges
     * fuse (each first fusion between two classes is logged); the
     * surviving classes become effective domains, capped at
     * @p requestedShards by deterministic round-robin packing.
     * @p defaultWindow is used when no positive-lookahead edge
     * survives between distinct domains (e.g. everything fused).
     */
    DomainPartition finalize(unsigned requestedShards,
                             Tick defaultWindow) const;

  private:
    struct Component
    {
        std::string name;
        std::string affinity;
    };

    struct GroupEdge
    {
        std::string a;
        std::string b;
        Tick lookahead;
        std::string why;
    };

    std::vector<Component> components;
    std::vector<GroupEdge> groupEdges;
};

/**
 * Partition a live System for @p shards PDES domains: walks the
 * machine's affinity tags and declares the production communication
 * edges (with their honest lookaheads) before resolving.
 */
DomainPartition computeSystemPartition(System &sys, unsigned shards);

} // namespace strand

#endif // CORE_DOMAIN_PARTITION_HH
