#include "core/system.hh"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "core/env_config.hh"
#include "runtime/layout.hh"

namespace strand
{

System::System(const SystemConfig &config)
    : stats::StatGroup("system"), cfg(config)
{
    fatalIf(cfg.numCores == 0, "system needs at least one core");

    cfg.engine.adversary = cfg.adversary;
    cfg.caches.adversary = cfg.adversary;

    pmCtrl = std::make_unique<MemController>("pm", eq, image, cfg.pm,
                                             true, this);
    dramCtrl = std::make_unique<MemController>("dram", eq, image,
                                               cfg.dram, false, this);
    caches = std::make_unique<Hierarchy>("caches", eq, image,
                                         cfg.numCores, cfg.caches,
                                         *pmCtrl, *dramCtrl, this);

    // ADR admissions fan out through the observer hub; the internal
    // trace recorder is the first subscriber so persistTrace() is
    // already updated when later observers see the same record.
    hub.add(&traceRecorder);
    pmCtrl->setPersistObserver([this](const Packet &pkt, Tick when) {
        hub.persistAdmitted(
            {pkt.data.lineAddr, when, pkt.requester, pkt.origin});
    });
    caches->setObserverHub(&hub);

    coreFinish.assign(cfg.numCores, 0);
    for (CoreId i = 0; i < cfg.numCores; ++i) {
        // Engines parent into the system stat tree under their core's
        // name so every component has a unique dotted path — the
        // snapshot layer keys component state by that path.
        auto engine = makePersistEngine(
            cfg.design, "cpu" + std::to_string(i) + ".engine", eq, i,
            *caches, cfg.engine, this);
        engine->setObserverHub(&hub, i);
        cores.push_back(std::make_unique<Core>(
            "cpu" + std::to_string(i), eq, i, *caches,
            std::move(engine), locks, cfg.core, this));
        cores.back()->setObserverHub(&hub);
        cores.back()->setFinishedCallback([this, i] {
            coreFinish[i] = eq.curTick();
            if (eq.curTick() > lastFinish)
                lastFinish = eq.curTick();
        });
    }
}

System::~System()
{
    // No event may reach observers once destruction begins: member
    // teardown order would hand them a half-destroyed System. The
    // hub panics on any notification after this point.
    hub.beginTeardown();
}

void
System::seedImage(const std::unordered_map<Addr, std::uint64_t> &words)
{
    // Seeded words cluster heavily within lines, so prewarming once
    // per word would re-probe the same L2 set 8x. Dedupe to distinct
    // lines in first-seen order — the install order decides L2 victim
    // selection, so it must match what per-word calls produced — and
    // merge runs of adjacent lines into single prewarm ranges.
    std::vector<Addr> lines;
    std::unordered_set<Addr> seenLines;
    for (auto [addr, value] : words) {
        if (isPersistentAddr(addr))
            image.writeDurable(addr, value);
        else
            image.writeArch(addr, value);
        if (!cfg.warmCaches)
            continue;
        const Addr line = lineAlign(addr);
        if (seenLines.insert(line).second)
            lines.push_back(line);
    }
    if (cfg.warmCaches) {
        Addr runStart = 0;
        Addr runEnd = 0;
        for (Addr line : lines) {
            if (runEnd != runStart && line == runEnd) {
                runEnd += lineBytes;
                continue;
            }
            if (runEnd != runStart)
                caches->prewarmL2(runStart, runEnd);
            runStart = line;
            runEnd = line + lineBytes;
        }
        if (runEnd != runStart)
            caches->prewarmL2(runStart, runEnd);
        // The per-thread circular log buffers are written on every
        // operation and are LLC-resident in steady state.
        caches->prewarmL2(pmBase, cfg.layout.heapBase());
    }
}

void
System::loadStreams(std::vector<OpStream> streams)
{
    fatalIf(streams.size() != cores.size(),
            "stream count {} does not match core count {}",
            streams.size(), cores.size());
    for (CoreId i = 0; i < cores.size(); ++i)
        cores[i]->setStream(std::move(streams[i]));
    streamsLoaded = true;
}

Tick
System::run()
{
    fatalIf(!streamsLoaded, "run() without loadStreams()");
    startCores();
    if (requestedShards() > 1)
        runWindowed(maxTick);
    else
        eq.run();
    panicIf(!finishedAll(),
            "event queue drained but cores have not finished "
            "(deadlocked ordering constraint?)");
    return lastFinish;
}

bool
System::runUntil(Tick limit)
{
    fatalIf(!streamsLoaded, "runUntil() without loadStreams()");
    startCores();
    if (requestedShards() > 1)
        runWindowed(limit);
    else
        eq.runUntil(limit);
    return finishedAll();
}

unsigned
System::requestedShards() const
{
    return cfg.shards ? cfg.shards : envShards();
}

const DomainPartition &
System::domainPartition()
{
    if (!part)
        part = computeSystemPartition(*this, requestedShards());
    return *part;
}

Tick
System::shardWindowTicks()
{
    if (cfg.windowTicks)
        return cfg.windowTicks;
    if (envConfig().windowTicks)
        return *envConfig().windowTicks;
    return domainPartition().windowTicks;
}

void
System::runWindowed(Tick limit)
{
    // The production partition yields 1 + nCores effective domains
    // (each core's mailbox legs declare a positive latency, so
    // nothing fuses), but all components still share this system's
    // single kernel queue and a "window" is a bounded runUntil step
    // no wider than the partition's minimum cross-domain lookahead.
    // The kernel services exactly the same events in exactly the
    // same order as one unbounded run — the windows only pace how
    // far the clock is allowed to advance per step — which is what
    // makes SW_SHARDS a pure performance knob with bit-identical
    // results.
    const Tick window = shardWindowTicks();
    panicIf(window == 0, "sharded run needs a window width >= 1");
    for (;;) {
        const Tick start = eq.nextLiveTick();
        if (start == maxTick || start > limit)
            break;
        const Tick windowEnd = window >= maxTick - start
                                   ? maxTick
                                   : start + window - 1;
        const Tick stop = std::min(windowEnd, limit);
        if (stop == maxTick) {
            eq.run();
            ++pdesWindows;
            return;
        }
        eq.runUntil(stop);
        ++pdesWindows;
    }
    // Preserve the serial runUntil() contract: the clock lands on
    // the limit even when the queue drains early.
    if (limit != maxTick)
        eq.runUntil(limit);
}

void
System::startCores()
{
    if (coresStarted)
        return;
    coresStarted = true;
    for (auto &core : cores)
        core->start();
}

SimSnapshot
System::snapshot() const
{
    SimSnapshot snap;
    // Kernel state first: the queue capture carries every scheduled
    // one-shot callback by copy and pins the clock.
    snap.put("system.eq", eq.snapshot());
    snap.put("system.image", image);
    snap.put("system.locks", locks.snapshotLocks());
    RunState rs;
    rs.persists = persists;
    rs.coreFinish = coreFinish;
    rs.lastFinish = lastFinish;
    rs.streamsLoaded = streamsLoaded;
    rs.coresStarted = coresStarted;
    rs.pdesWindows = pdesWindows;
    snap.put("system.run", std::move(rs));
    // Component graph, keyed by dotted instance name. Cores recurse
    // into their persist engines (and strand buffer units).
    pmCtrl->saveState(snap);
    dramCtrl->saveState(snap);
    caches->saveState(snap);
    for (const auto &core : cores)
        core->saveState(snap);
    snap.put("system.stats", snapshotStats());
    return snap;
}

void
System::restore(const SimSnapshot &snap)
{
    eq.restore(snap.get<EventQueue::Snapshot>("system.eq"));
    image = snap.get<MemoryImage>("system.image");
    locks.restoreLocks(
        snap.get<std::unordered_map<std::uint32_t, LockTable::Lock>>(
            "system.locks"));
    const RunState &rs = snap.get<RunState>("system.run");
    persists = rs.persists;
    coreFinish = rs.coreFinish;
    lastFinish = rs.lastFinish;
    streamsLoaded = rs.streamsLoaded;
    coresStarted = rs.coresStarted;
    pdesWindows = rs.pdesWindows;
    pmCtrl->restoreState(snap);
    dramCtrl->restoreState(snap);
    caches->restoreState(snap);
    for (auto &core : cores)
        core->restoreState(snap);
    restoreStats(
        snap.get<stats::StatGroup::StatValues>("system.stats"));
}

double
System::totalClwbs() const
{
    // CLWBs are counted at the hierarchy flush entry point, which
    // every engine's CLWB path passes through exactly once.
    return caches->flushesDirty.value() + caches->flushesClean.value();
}

double
System::totalPersistStalls() const
{
    double total = 0;
    for (const auto &core : cores)
        total += core->persistStallCycles();
    return total;
}

double
System::totalCycles() const
{
    double total = 0;
    for (const auto &core : cores)
        total += core->numCycles.value();
    return total;
}

double
System::totalCommitted() const
{
    double total = 0;
    for (const auto &core : cores)
        total += core->opsCommitted.value();
    return total;
}

} // namespace strand
