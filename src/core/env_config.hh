/**
 * @file
 * Centralized, validated parsing of the SW_* environment knobs.
 *
 * Every bench and test knob lives here — nothing else in the tree
 * calls std::getenv — so the full knob surface is visible in one
 * place and malformed values fail loudly at startup instead of
 * silently falling back to defaults:
 *
 *   SW_OPS          operations per thread (>= 1)
 *   SW_THREADS      program threads (>= 1)
 *   SW_CRASH_POINTS crash points injected per validated experiment
 *                   (0 disables injection)
 *   SW_JOBS         sweep worker threads (>= 1; default: hardware
 *                   concurrency; 1 reproduces serial execution)
 *   SW_SHARDS       PDES domains requested for intra-simulation
 *                   sharding (>= 1; default 1 = classic serial loop;
 *                   results are bit-identical at any value)
 *   SW_WINDOW_TICKS lock-step window width in ticks for the sharded
 *                   run loop (>= 1; default: derived from the
 *                   partition's minimum cross-domain lookahead)
 *   SW_TORN_WORDS   torn-cacheline injection: admit only this many
 *                   8-byte words of the final flushed line at each
 *                   crash point (0..7; unset disables tearing)
 *   SW_CRASH_SEED   seed for random crash-tick selection (any u64;
 *                   0x-prefixed hex accepted)
 *   SW_FUZZ_TRIALS  fuzz trials per campaign cell (0 disables cells)
 *   SW_FUZZ_SEED    campaign seed for fuzz trials (any u64;
 *                   0x-prefixed hex accepted)
 *   SW_PMOSAN       attach the online PMO-san persist-order checker
 *                   to every run (0/1; default off)
 *   SW_CRASH_FORK   forked-snapshot crash exploration: one warm run,
 *                   forked and rewound per crash point (0/1; default
 *                   off = two-run oracle mode)
 *   SW_FUZZ_FORK_BRANCH
 *                   forked fuzz branching: snapshot the machine at
 *                   adversary decision sites and explore this many
 *                   extra schedule suffixes per trial from the warm
 *                   prefix (>= 0; default 0 = off; a non-zero value
 *                   implies the forked trial path)
 *   SW_MEDIA_POISON max poisoned (uncorrectable) lines injected per
 *                   crash point (0..8; crash_matrix default 1)
 *   SW_MEDIA_FLIPS  max in-line bit flips injected per crash point
 *                   (0..8; crash_matrix default 1)
 *   SW_MEDIA_DROP   max trailing ADR admissions dropped per crash
 *                   point — partial drain (0..8; crash_matrix
 *                   default 2)
 *   SW_MEDIA_SEED   seed of the media-fault stream (any u64;
 *                   0x-prefixed hex accepted)
 *   SW_LOG          console log level: 0 quiet, 1 normal, 2 verbose
 *                   (verbose prints the PDES partition: per-edge
 *                   port-declared lookaheads and the derived window)
 *   SW_OUT_DIR      directory for JSON result files (default
 *                   bench/out)
 *
 * The knobs are also described by a data registry (envKnobs()), from
 * which every bench binary generates the same --help table — adding
 * a knob here without a registry row trips the env-config test.
 *
 * The environment is parsed once per process; sweep worker threads
 * may read the parsed config concurrently.
 */

#ifndef CORE_ENV_CONFIG_HH
#define CORE_ENV_CONFIG_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace strand
{

/** Parsed SW_* knobs; unset optionals mean "use the caller's default". */
struct EnvConfig
{
    std::optional<unsigned> ops;
    std::optional<unsigned> threads;
    std::optional<unsigned> crashPoints;
    std::optional<unsigned> jobs;
    std::optional<unsigned> shards;
    std::optional<unsigned> windowTicks;
    std::optional<unsigned> tornWords;
    std::optional<std::uint64_t> crashSeed;
    std::optional<unsigned> fuzzTrials;
    std::optional<std::uint64_t> fuzzSeed;
    std::optional<bool> pmosan;
    std::optional<bool> crashFork;
    std::optional<unsigned> fuzzForkBranch;
    std::optional<unsigned> mediaPoison;
    std::optional<unsigned> mediaFlips;
    std::optional<unsigned> mediaDrop;
    std::optional<std::uint64_t> mediaSeed;
    /** Console log level (0 quiet / 1 normal / 2 verbose). */
    std::optional<unsigned> logLevel;
    std::string outDir = "bench/out";
};

/** One documented environment knob (the --help registry). */
struct EnvKnob
{
    const char *name;        ///< e.g. "SW_OPS"
    const char *constraints; ///< e.g. ">= 1", "0..7", "u64"
    const char *fallback;    ///< behaviour when unset
    const char *summary;     ///< one-line description
};

/** Every SW_* knob the tree reads, in documentation order. */
const std::vector<EnvKnob> &envKnobs();

/** The shared, aligned knob table every bench prints for --help. */
std::string envKnobTable();

/**
 * Parse the SW_* knobs through @p get (a getenv-shaped lookup).
 * Calls fatal() on malformed, negative, or out-of-range values.
 * Exposed separately from envConfig() so tests can exercise the
 * validation without mutating the process environment.
 */
EnvConfig parseEnvConfig(
    const std::function<const char *(const char *)> &get);

/** The process environment, parsed and validated once. */
const EnvConfig &envConfig();

/**
 * Worker threads for sweep execution: SW_JOBS if set, otherwise the
 * host's hardware concurrency (at least 1).
 */
unsigned envJobs();

/**
 * Requested PDES domains: SW_SHARDS if set, otherwise 1 (the classic
 * serial event loop). Results are bit-identical at any value.
 */
unsigned envShards();

} // namespace strand

#endif // CORE_ENV_CONFIG_HH
