#include "core/sweep.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "core/env_config.hh"

namespace strand
{

std::string
SweepCell::workload() const
{
    if (!workloadLabel.empty())
        return workloadLabel;
    if (recorded)
        return workloadName(recorded->kind);
    return "?";
}

std::string
SweepCell::key() const
{
    std::string result = workload();
    result += '/';
    result += hwDesignName(design);
    result += '/';
    result += persistencyModelName(model);
    if (!variant.empty()) {
        result += '/';
        result += variant;
    }
    return result;
}

SweepCell &
SweepSpec::addTiming(std::shared_ptr<const RecordedWorkload> rec,
                     HwDesign design, PersistencyModel model,
                     std::string baseline)
{
    SweepCell cell;
    cell.kind = CellKind::Timing;
    cell.recorded = std::move(rec);
    cell.design = design;
    cell.model = model;
    cell.baseline = std::move(baseline);
    return add(std::move(cell));
}

SweepCell &
SweepSpec::addCrash(std::shared_ptr<const RecordedWorkload> rec,
                    HwDesign design, PersistencyModel model,
                    unsigned crashPoints)
{
    SweepCell cell;
    cell.kind = CellKind::Crash;
    cell.recorded = std::move(rec);
    cell.design = design;
    cell.model = model;
    cell.crashPoints = crashPoints;
    return add(std::move(cell));
}

SweepCell &
SweepSpec::addFuzz(const FuzzCellConfig &campaign)
{
    SweepCell cell;
    cell.kind = CellKind::Fuzz;
    cell.design = campaign.base.design;
    cell.model = campaign.base.model;
    cell.config.logStyle = campaign.base.logStyle;
    cell.config.engine = campaign.base.experiment.engine;
    cell.workloadLabel = workloadName(campaign.base.kind);
    cell.fuzz = campaign;
    return add(std::move(cell));
}

const CellResult *
SweepResult::find(const std::string &key) const
{
    for (const CellResult &cell : cells)
        if (cell.key == key)
            return &cell;
    return nullptr;
}

bool
SweepResult::allOk() const
{
    for (const CellResult &cell : cells)
        if (!cell.ok)
            return false;
    return true;
}

std::vector<std::string>
SweepResult::failedKeys() const
{
    std::vector<std::string> keys;
    for (const CellResult &cell : cells)
        if (!cell.ok)
            keys.push_back(cell.key);
    return keys;
}

namespace
{

/** FNV-1a over the cell key, for remixing per-cell fuzz seeds. */
std::uint64_t
hashKey(const std::string &key)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

/** Execute one cell; throws propagate to the caller's handler. */
void
executeCell(const SweepCell &cell, CellResult &result)
{
    if (cell.kind == CellKind::Fuzz) {
        // Remix the campaign seed with the cell coordinates so cells
        // sharing one campaign seed still explore independent
        // schedules — deterministically, whatever SW_JOBS is.
        FuzzCellConfig campaign = cell.fuzz;
        campaign.seed = mixSeed(campaign.seed, hashKey(result.key));
        result.fuzz = runFuzzCell(campaign);
        result.ok = true;
        return;
    }
    panicIf(!cell.recorded, "sweep cell {} has no recorded workload",
            result.key);
    if (cell.kind == CellKind::Timing) {
        result.metrics =
            runExperiment(*cell.recorded, cell.design, cell.model,
                          cell.config, cell.validate);
    } else {
        CrashHarnessConfig crashCfg;
        crashCfg.pointBudget = cell.crashPoints;
        crashCfg.seed = benchCrashSeed(crashCfg.seed);
        crashCfg.logStyle = cell.config.logStyle;
        crashCfg.tornWords = cell.tornWords;
        crashCfg.media = cell.media;
        crashCfg.experiment = cell.config;
        crashCfg.fork = cell.crashFork;
        crashCfg.verifyMidrunFork = cell.crashVerifyMidrunFork;
        result.crash = runCrashCell(*cell.recorded, cell.design,
                                    cell.model, crashCfg);
    }
    result.ok = true;
}

} // namespace

SweepResult
runSweep(const SweepSpec &spec)
{
    SweepResult result;
    result.name = spec.name;
    unsigned jobs = spec.jobs ? spec.jobs : envJobs();
    if (!spec.cells.empty())
        jobs = std::min<unsigned>(
            jobs, static_cast<unsigned>(spec.cells.size()));
    result.jobs = std::max(jobs, 1u);

    // Pre-fill coordinates in spec order so results are positionally
    // stable however the workers interleave, and so even a panicking
    // cell reports its coordinates.
    result.cells.resize(spec.cells.size());
    for (std::size_t i = 0; i < spec.cells.size(); ++i) {
        const SweepCell &cell = spec.cells[i];
        CellResult &out = result.cells[i];
        out.kind = cell.kind;
        out.workload = cell.workload();
        out.design = cell.design;
        out.model = cell.model;
        out.logStyle = cell.config.logStyle;
        out.variant = cell.variant;
        out.key = cell.key();
        out.baseline = cell.baseline;
        out.tornWords = cell.tornWords;
        out.media = cell.media;
    }

    auto runOne = [&](std::size_t i) {
        CellResult &out = result.cells[i];
        setLogCellLabel(out.key);
        auto started = std::chrono::steady_clock::now();
        try {
            executeCell(spec.cells[i], out);
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
        }
        out.host.wallMs =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - started)
                .count();
        switch (out.kind) {
          case CellKind::Timing:
            out.host.events = out.metrics.hostEvents;
            out.host.simOps = out.metrics.simOps;
            break;
          case CellKind::Crash:
            out.host.events = out.crash.hostEvents;
            out.host.simOps = out.crash.simOps;
            break;
          case CellKind::Fuzz:
            out.host.events = out.fuzz.hostEvents;
            out.host.simOps = out.fuzz.simOps;
            break;
        }
        setLogCellLabel("");
    };

    if (result.jobs == 1) {
        // Legacy behavior: every cell on the calling thread, in spec
        // order, with no pool machinery at all.
        for (std::size_t i = 0; i < spec.cells.size(); ++i)
            runOne(i);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (std::size_t i = next.fetch_add(1);
                 i < spec.cells.size(); i = next.fetch_add(1)) {
                runOne(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(result.jobs);
        for (unsigned t = 0; t < result.jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread &thread : pool)
            thread.join();
    }

    // Baselines are ordinary cells, so speedups resolve after the
    // pool drains — no scheduling dependencies between cells.
    for (CellResult &cell : result.cells) {
        if (cell.baseline.empty() || !cell.ok)
            continue;
        const CellResult *base = result.find(cell.baseline);
        if (!base || !base->ok) {
            cell.ok = false;
            cell.error = "baseline cell " + cell.baseline +
                         (base ? " failed" : " not found");
            continue;
        }
        cell.speedup = cell.metrics.speedupOver(base->metrics);
    }
    return result;
}

std::shared_ptr<const RecordedWorkload>
recordShared(WorkloadKind kind, const WorkloadParams &params)
{
    return std::make_shared<const RecordedWorkload>(
        recordWorkload(kind, params));
}

} // namespace strand
