/**
 * @file
 * Small reusable PersistObserver implementations shared by the crash
 * harness, the fuzzer, the benches, and tests.
 */

#ifndef CORE_OBSERVER_UTIL_HH
#define CORE_OBSERVER_UTIL_HH

#include <cstdint>
#include <functional>

#include "core/observer.hh"

namespace strand
{

/**
 * Streaming FNV-1a hash of the persist trace. Produces the same
 * value as hashing the complete trace after the run (the fuzzer's
 * replay-divergence check) without buffering it.
 */
class TraceHasher final : public PersistObserver
{
  public:
    void
    onPersistAdmitted(const PersistRecord &rec) override
    {
        mix(rec.lineAddr);
        mix(rec.when);
        mix(rec.requester);
        mix(static_cast<std::uint64_t>(rec.origin));
    }

    std::uint64_t value() const { return hash; }

    /** Snapshot support: rewind to a value() captured earlier. */
    void restoreValue(std::uint64_t v) { hash = v; }

  private:
    void
    mix(std::uint64_t value)
    {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (value >> (8 * i)) & 0xff;
            hash *= 0x100000001b3ULL;
        }
    }

    std::uint64_t hash = 0xcbf29ce484222325ULL; // FNV-1a offset basis
};

/** Counts ADR admissions (bench throughput observability). */
class AdmissionTally final : public PersistObserver
{
  public:
    void
    onPersistAdmitted(const PersistRecord &) override
    {
        ++count;
    }

    std::uint64_t admissions() const { return count; }

  private:
    std::uint64_t count = 0;
};

/**
 * Adapter for ad-hoc consumers: forwards each admission to a
 * std::function. Replaces the one-off setPersistHook lambdas.
 */
class AdmissionCallback final : public PersistObserver
{
  public:
    explicit AdmissionCallback(
        std::function<void(const PersistRecord &)> fn)
        : fn(std::move(fn))
    {}

    void
    onPersistAdmitted(const PersistRecord &rec) override
    {
        fn(rec);
    }

  private:
    std::function<void(const PersistRecord &)> fn;
};

} // namespace strand

#endif // CORE_OBSERVER_UTIL_HH
