#include "core/domain_partition.hh"

#include <algorithm>
#include <map>
#include <numeric>

#include "core/system.hh"
#include "mem/port.hh"
#include "sim/logging.hh"

namespace strand
{

void
DomainPartitionBuilder::addComponent(std::string name,
                                     std::string affinity)
{
    panicIf(name.empty(), "component needs a name");
    panicIf(affinity.empty(), "component {} needs an affinity", name);
    components.push_back({std::move(name), std::move(affinity)});
}

void
DomainPartitionBuilder::addEdge(const std::string &a,
                                const std::string &b, Tick lookahead,
                                std::string why)
{
    panicIf(a == b, "edge within affinity group {}", a);
    panicIf(why.empty(), "edge ({}, {}) needs a reason", a, b);
    groupEdges.push_back({a, b, lookahead, std::move(why)});
}

DomainPartition
DomainPartitionBuilder::finalize(unsigned requestedShards,
                                 Tick defaultWindow) const
{
    fatalIf(requestedShards == 0, "at least one shard is required");
    panicIf(defaultWindow == 0, "default window must be >= 1 tick");

    // Affinity groups in deterministic (sorted-tag) order.
    std::map<std::string, std::vector<std::string>> groups;
    for (const Component &c : components)
        groups[c.affinity].push_back(c.name);
    std::vector<std::string> tags;
    tags.reserve(groups.size());
    for (const auto &[tag, members] : groups)
        tags.push_back(tag);
    auto groupIndex = [&](const std::string &tag) -> std::size_t {
        auto it = std::lower_bound(tags.begin(), tags.end(), tag);
        panicIf(it == tags.end() || *it != tag,
                "edge references unknown affinity group {}", tag);
        return static_cast<std::size_t>(it - tags.begin());
    };

    // Union-find over groups; zero-lookahead edges force fusion.
    std::vector<std::size_t> parent(tags.size());
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    DomainPartition part;
    part.requestedShards = requestedShards;
    for (const GroupEdge &e : groupEdges) {
        if (e.lookahead != 0)
            continue;
        std::size_t ra = find(groupIndex(e.a));
        std::size_t rb = find(groupIndex(e.b));
        if (ra == rb)
            continue;
        // Keep the smaller-tag root so the class keeps a stable name.
        parent[std::max(ra, rb)] = std::min(ra, rb);
        part.fusions.push_back({e.a, e.b, e.why});
    }

    // Classes in root-tag order, then pack round-robin into at most
    // requestedShards domains — deterministic for a fixed machine.
    std::map<std::size_t, std::vector<std::size_t>> classes;
    for (std::size_t g = 0; g < tags.size(); ++g)
        classes[find(g)].push_back(g);
    const unsigned numDomains = std::min(
        requestedShards, static_cast<unsigned>(classes.size()));
    part.domains.resize(numDomains);
    part.domainTags.resize(numDomains);
    std::vector<std::size_t> domainOf(tags.size(), 0);
    unsigned next = 0;
    for (const auto &[root, members] : classes) {
        const unsigned d = next++ % numDomains;
        if (part.domainTags[d].empty())
            part.domainTags[d] = tags[root];
        for (std::size_t g : members) {
            domainOf[g] = d;
            const auto &names = groups.at(tags[g]);
            part.domains[d].insert(part.domains[d].end(),
                                   names.begin(), names.end());
        }
    }

    // Window: minimum lookahead among edges that still cross domains.
    // The surviving edges are kept (and logged) so the derived window
    // is explainable from the partition alone.
    Tick window = maxTick;
    for (const GroupEdge &e : groupEdges) {
        if (e.lookahead == 0)
            continue;
        if (domainOf[groupIndex(e.a)] != domainOf[groupIndex(e.b)]) {
            window = std::min(window, e.lookahead);
            part.crossEdges.push_back({e.a, e.b, e.lookahead, e.why});
        }
    }
    part.windowTicks = window == maxTick ? defaultWindow : window;

    inform("domain partition: {} affinity groups -> {} effective "
           "domains (requested {})",
           tags.size(), part.domains.size(), requestedShards);
    for (const DomainFusion &f : part.fusions)
        inform("  fused {} + {}: {}", f.groupA, f.groupB, f.reason);
    for (const DomainEdge &e : part.crossEdges)
        inform("  edge {} -> {}: lookahead {} ticks ({})", e.a, e.b,
               e.lookahead, e.why);
    inform("  window: {} ticks{}", part.windowTicks,
           window == maxTick ? " (default; no surviving cross-domain "
                               "edge)"
                             : "");
    return part;
}

DomainPartition
computeSystemPartition(System &sys, unsigned shards)
{
    DomainPartitionBuilder b;
    b.addComponent(sys.hierarchy().fullName(),
                   sys.hierarchy().domainAffinity());
    b.addComponent(sys.pmController().fullName(),
                   sys.pmController().domainAffinity());
    for (CoreId id = 0; id < sys.numCores(); ++id) {
        Core &core = sys.core(id);
        PersistEngine &engine = core.persistEngine();
        b.addComponent(core.fullName(), core.domainAffinity());
        b.addComponent(engine.fullName(), engine.domainAffinity());
        // The honest production edges. Every core-side component
        // reaches the shared fabric through a MemPort whose legs
        // declare a latency >= 1 tick (mem/port.hh forbids same-tick
        // replies), so the lookahead is the minimum declared leg and
        // nothing fuses. Engines without a port of their own report
        // maxTick and impose no constraint beyond the core's.
        const Tick reqLook = std::min(core.memPort().requestLatency(),
                                      engine.portRequestLatency());
        const Tick respLook =
            std::min(core.memPort().responseLatency(),
                     engine.portResponseLatency());
        b.addEdge(core.domainAffinity(), "shared", reqLook,
                  "port-declared request leg (min of core load/store "
                  "mailbox and persist-engine flush mailbox)");
        b.addEdge("shared", core.domainAffinity(), respLook,
                  "port-declared response leg (min of core and "
                  "persist-engine mailboxes)");
    }
    // With a single requested shard every class packs into one domain
    // and no cross-domain edge survives; the windowed loop still
    // needs a width, and the port leg is the natural quantum.
    return b.finalize(shards, portLegLatency);
}

} // namespace strand
