#include "core/experiment.hh"

#include "core/env_config.hh"
#include "core/observer_util.hh"
#include "crash/crash_harness.hh"
#include "sanitizer/pmo_sanitizer.hh"

namespace strand
{

RecordedWorkload
recordWorkload(WorkloadKind kind, const WorkloadParams &params)
{
    RecordedWorkload result;
    result.kind = kind;
    result.params = params;
    result.workload = makeWorkload(kind);

    LogLayout layout;
    TraceRecorder rec(params.numThreads);
    PersistentHeap heap(layout, params.numThreads);
    result.workload->record(rec, heap, params);
    result.preload = rec.preloadedWords();
    // Keep the full functional memory as part of the preload? No:
    // only preloaded setup state is durable at t=0; the rest flows
    // through the timed run.
    result.trace = rec.takeTrace();
    return result;
}

RunMetrics
runExperiment(const RecordedWorkload &recorded, HwDesign design,
              PersistencyModel model, const ExperimentConfig &config,
              bool validate)
{
    InstrumentorParams ip;
    ip.design = design;
    ip.model = model;
    ip.logStyle = config.logStyle;
    Instrumentor instr(ip);
    auto streams = instr.lower(recorded.trace);

    SystemConfig sysCfg = config.baseSystem;
    // SFR/ATLAS lowering appends the background pruner's stream; it
    // runs on an additional core.
    sysCfg.numCores = static_cast<unsigned>(streams.size());
    sysCfg.design = design;
    sysCfg.engine = config.engine;
    System sys(sysCfg);
    sys.seedImage(recorded.preload);
    sys.loadStreams(std::move(streams));

    AdmissionTally tally;
    sys.addObserver(&tally);
    const bool pmosan =
        config.pmosan.value_or(benchPmosan());
    PmoSanitizer sanitizer;
    if (pmosan)
        sys.addObserver(&sanitizer);

    RunMetrics metrics;
    sys.run();
    // Throughput is defined by the program cores; the background
    // pruner's end-of-run backlog drain (which steady-state
    // execution would overlap) is excluded. Sustained pruner
    // pressure still shows up through the run-ahead window.
    for (CoreId i = 0; i < recorded.params.numThreads; ++i)
        metrics.runTicks = std::max(metrics.runTicks,
                                    sys.finishTickOf(i));
    metrics.totalCycles = sys.totalCycles();
    metrics.clwbs = sys.totalClwbs();
    metrics.persistStalls = sys.totalPersistStalls();
    for (CoreId i = 0; i < sys.numCores(); ++i)
        metrics.allStalls += sys.core(i).stallCycles.sum();
    metrics.snoopStalls = sys.hierarchy().snoopStalls.value();
    metrics.ckc = metrics.totalCycles > 0
                      ? 1000.0 * metrics.clwbs / metrics.totalCycles
                      : 0.0;
    metrics.lowering = instr.stats();
    metrics.hostEvents = sys.eventsServiced();
    metrics.simOps =
        static_cast<std::uint64_t>(sys.totalCommitted());
    metrics.pmAdmissions = tally.admissions();

    if (pmosan) {
        metrics.pmosanViolations = sanitizer.violationCount();
        metrics.pmosanChecked = sanitizer.persistsChecked();
        // NON-ATOMIC omits the ordering the models ask for — PMO-san
        // flagging it is the expected self-test, not an error.
        panicIf(design != HwDesign::NonAtomic && !sanitizer.ok(),
                "PMO-san: persist-order violation in {} under {}/{}:\n{}",
                recorded.workload->name(), hwDesignName(design),
                persistencyModelName(model), sanitizer.report());
    }

    if (validate && design != HwDesign::NonAtomic) {
        const MemoryImage &img = sys.memory();
        auto read = [&img](Addr addr) {
            return img.readPersisted(addr);
        };
        std::string problem = recorded.workload->checkInvariants(read);
        panicIf(!problem.empty(),
                "post-run invariant violation in {} under {}/{}: {}",
                recorded.workload->name(), hwDesignName(design),
                persistencyModelName(model), problem);
    }

    if (unsigned crashPoints = benchCrashPoints(); validate &&
                                                   crashPoints > 0) {
        CrashHarnessConfig crashCfg;
        crashCfg.pointBudget = crashPoints;
        crashCfg.seed = benchCrashSeed(crashCfg.seed);
        crashCfg.logStyle = config.logStyle;
        crashCfg.experiment = config;
        crashCfg.pmosan = config.pmosan;
        CrashCellResult cell =
            runCrashCell(recorded, design, model, crashCfg);
        metrics.hostEvents += cell.hostEvents;
        metrics.simOps += cell.simOps;
        panicIf(design != HwDesign::NonAtomic && !cell.allPassed(),
                "crash-consistency violation in {} under {}/{}: "
                "{}/{} crash points failed; first: {}",
                recorded.workload->name(), hwDesignName(design),
                persistencyModelName(model),
                cell.pointsTested - cell.pointsPassed,
                cell.pointsTested,
                cell.failures.empty() ? std::string("?")
                                      : cell.failures.front().violation);
    }
    return metrics;
}

unsigned
benchOpsPerThread(unsigned fallback)
{
    return envConfig().ops.value_or(fallback);
}

unsigned
benchThreads(unsigned fallback)
{
    return envConfig().threads.value_or(fallback);
}

unsigned
benchCrashPoints(unsigned fallback)
{
    return envConfig().crashPoints.value_or(fallback);
}

std::uint64_t
benchCrashSeed(std::uint64_t fallback)
{
    return envConfig().crashSeed.value_or(fallback);
}

unsigned
benchFuzzTrials(unsigned fallback)
{
    return envConfig().fuzzTrials.value_or(fallback);
}

std::uint64_t
benchFuzzSeed(std::uint64_t fallback)
{
    return envConfig().fuzzSeed.value_or(fallback);
}

bool
benchPmosan(bool fallback)
{
    return envConfig().pmosan.value_or(fallback);
}

} // namespace strand
