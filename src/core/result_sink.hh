/**
 * @file
 * Result sink for sweep runs: the stable JSON schema CI and the
 * BENCH_*.json trajectory tooling diff across revisions, plus the
 * generic pivot-table renderer the figure benches print with.
 *
 * JSON schema (version 3), one document per bench at
 * <SW_OUT_DIR>/<bench>.json (default bench/out/):
 *
 *   { "bench": "<name>", "schema": 3,
 *     "cells": [ ... ], "host": { ... } }
 *
 * Each cell carries its coordinates (workload, design, model,
 * log_style, variant), its baseline key and resolved speedup, an
 * ok/error pair, and either "metrics" (timing cells: run_ticks,
 * total_cycles, clwbs, persist_stalls, all_stalls, snoop_stalls,
 * ckc, lowering counters) or "crash" (crash cells: points_tested,
 * points_passed, rolled_back, replayed, torn_words, failures).
 * Cells appear in spec order and all numbers are rendered
 * deterministically, so the `cells` array is byte-identical across
 * SW_JOBS values — and byte-identical to the schema-1 rendering,
 * so trajectory diffs survive the bump.
 *
 * Schema 2 adds the top-level `host` block: aggregate wall_ms,
 * events, sim_ops, and the derived events_per_sec / sim_ops_per_sec
 * rates, plus a per-cell {key, wall_ms, events, sim_ops} breakdown.
 * wall_ms is measured host time and therefore NOT deterministic;
 * determinism gates must diff `.cells` (jq) or render with
 * includeHost=false rather than compare whole documents.
 *
 * Schema 3 surfaces the RecoveryReport in each crash cell:
 * torn_entries_skipped, corrupt_quarantined, poisoned_quarantined,
 * quarantined_addrs, a per-point verdict tally
 * {full, degraded, failed}, and the cell's media-fault configuration
 * (null when the fault model is off).
 */

#ifndef CORE_RESULT_SINK_HH
#define CORE_RESULT_SINK_HH

#include <functional>
#include <string>

#include "core/sweep.hh"

namespace strand
{

/**
 * Render @p result as the schema-3 JSON document.
 * @param includeHost emit the (nondeterministic) `host` block; pass
 *        false to get a fully deterministic document for byte
 *        comparisons.
 */
std::string sweepJson(const SweepResult &result,
                      bool includeHost = true);

/**
 * Write sweepJson() to <SW_OUT_DIR>/<name>.json, creating the
 * directory as needed.
 * @return the path written.
 */
std::string writeSweepJson(const SweepResult &result);

/** One table: rows are workloads, columns come from a cell keyer. */
struct PivotOptions
{
    /** Include only matching cells (all cells when empty). */
    std::function<bool(const CellResult &)> include;
    /** Column label of a cell (e.g. its design name). Required. */
    std::function<std::string(const CellResult &)> column;
    /**
     * Value printed at (workload, column). Required. Return NaN to
     * print "-". Defaults hooks below cover the common speedup case.
     */
    std::function<double(const CellResult &)> value;
    unsigned workloadWidth = 12;
    unsigned columnWidth = 10;
    /** printf format for one value (width must match columnWidth). */
    const char *valueFormat = "%10.2f";
    /** Append a per-column geometric-mean row labeled @p meanLabel. */
    bool geomeanRow = true;
    const char *meanLabel = "avg";
};

/**
 * Print @p result as a workload-by-column table to stdout, rows and
 * columns in first-appearance (spec) order.
 * @return the table width, so callers can match separator rules.
 */
unsigned printPivot(const SweepResult &result,
                    const PivotOptions &options);

} // namespace strand

#endif // CORE_RESULT_SINK_HH
