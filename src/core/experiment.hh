/**
 * @file
 * Experiment driver: records workloads once, lowers them per
 * (hardware design x persistency model), replays them on the full
 * timing stack, and reports the metrics the paper's tables and
 * figures are built from (execution time, CLWB counts / CKC,
 * persist-induced stall cycles, speedups).
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/system.hh"
#include "runtime/instrumentor.hh"
#include "workloads/workload.hh"

namespace strand
{

/** A workload recorded once and reusable across designs/models. */
struct RecordedWorkload
{
    WorkloadKind kind = WorkloadKind::Queue;
    WorkloadParams params;
    RegionTrace trace;
    std::unordered_map<Addr, std::uint64_t> preload;
    /** Kept for invariant checks against run results. */
    std::shared_ptr<Workload> workload;
};

/** Metrics from one timing run. */
struct RunMetrics
{
    /** Wall-clock of the run: tick at which the last core finished. */
    Tick runTicks = 0;
    /** Sum of active cycles over all cores. */
    double totalCycles = 0;
    /** CLWBs that reached the cache hierarchy. */
    double clwbs = 0;
    /** Persist-induced dispatch stalls (Figure 8 metric). */
    double persistStalls = 0;
    /** All dispatch stall cycles. */
    double allStalls = 0;
    /** Stalls from the §IV write-back/snoop persist interlocks. */
    double snoopStalls = 0;
    /** CLWBs per 1000 cycles (Table II metric). */
    double ckc = 0;
    LoweringStats lowering;

    /**
     * @name Host-throughput observability
     * Deterministic simulation-side denominators for the schema-2
     * `host` block: kernel events serviced and simulated ops
     * committed by the run. NOT part of the `metrics` JSON block,
     * which stays byte-identical to schema 1.
     * @{
     */
    std::uint64_t hostEvents = 0;
    std::uint64_t simOps = 0;
    /** @} */

    /**
     * @name Observer-side observability
     * ADR admissions counted through the observer API, and PMO-san
     * results when the sanitizer was attached (SW_PMOSAN). Not part
     * of the `metrics` JSON block — cells stay byte-identical with
     * the sanitizer off.
     * @{
     */
    std::uint64_t pmAdmissions = 0;
    std::uint64_t pmosanViolations = 0;
    std::uint64_t pmosanChecked = 0;
    /** @} */

    /** Speedup of this run relative to @p baseline. */
    double
    speedupOver(const RunMetrics &baseline) const
    {
        return runTicks == 0
                   ? 0.0
                   : static_cast<double>(baseline.runTicks) /
                         static_cast<double>(runTicks);
    }
};

/** Experiment-wide knobs. */
struct ExperimentConfig
{
    EngineConfig engine;
    SystemConfig baseSystem; ///< numCores overridden per workload
    /** Write-ahead logging style the lowering emits (redo: TXN only). */
    LogStyle logStyle = LogStyle::Undo;
    /**
     * Attach the PMO-san online persist-order checker to the run and
     * panic on violations (except under NON-ATOMIC, where they are
     * expected and only counted). Unset defers to SW_PMOSAN.
     */
    std::optional<bool> pmosan;
};

/** Record @p kind once with @p params. */
RecordedWorkload recordWorkload(WorkloadKind kind,
                                const WorkloadParams &params);

/**
 * Lower @p recorded for (design, model) and replay it.
 * @param validate When true, panic if post-run invariants fail.
 */
RunMetrics runExperiment(const RecordedWorkload &recorded,
                         HwDesign design, PersistencyModel model,
                         const ExperimentConfig &config = {},
                         bool validate = true);

/**
 * Default op count per thread, overridable via env SW_OPS (validated
 * by the env_config module: malformed values die loudly).
 */
unsigned benchOpsPerThread(unsigned fallback = 220);

/** Default thread count, overridable via env SW_THREADS. */
unsigned benchThreads(unsigned fallback = 8);

/**
 * Crash points to inject per experiment, overridable via env
 * SW_CRASH_POINTS. When non-zero, runExperiment follows each
 * validated timing run with crash-point fault injection (see
 * crash/crash_harness.hh) and panics on recovery violations for
 * every design except NON-ATOMIC.
 */
unsigned benchCrashPoints(unsigned fallback = 0);

/**
 * Seed for random crash-tick selection, overridable via env
 * SW_CRASH_SEED (decimal or 0x-hex). Used everywhere a
 * CrashHarnessConfig is built, so one knob reseeds every harness.
 */
std::uint64_t benchCrashSeed(std::uint64_t fallback = 0xc4a54);

/**
 * Fuzz trials per campaign cell, overridable via env SW_FUZZ_TRIALS
 * (0 skips fuzz cells entirely).
 */
unsigned benchFuzzTrials(unsigned fallback = 8);

/** Fuzz campaign seed, overridable via env SW_FUZZ_SEED. */
std::uint64_t benchFuzzSeed(std::uint64_t fallback = 0xf022);

/**
 * Whether to attach the PMO-san online persist-order checker,
 * overridable via env SW_PMOSAN (default off).
 */
bool benchPmosan(bool fallback = false);

} // namespace strand

#endif // CORE_EXPERIMENT_HH
