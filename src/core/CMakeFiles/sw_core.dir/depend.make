# Empty dependencies file for sw_core.
# This may be replaced when dependencies are built.
