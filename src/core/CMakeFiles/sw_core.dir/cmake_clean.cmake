file(REMOVE_RECURSE
  "CMakeFiles/sw_core.dir/domain_partition.cc.o"
  "CMakeFiles/sw_core.dir/domain_partition.cc.o.d"
  "CMakeFiles/sw_core.dir/env_config.cc.o"
  "CMakeFiles/sw_core.dir/env_config.cc.o.d"
  "CMakeFiles/sw_core.dir/experiment.cc.o"
  "CMakeFiles/sw_core.dir/experiment.cc.o.d"
  "CMakeFiles/sw_core.dir/result_sink.cc.o"
  "CMakeFiles/sw_core.dir/result_sink.cc.o.d"
  "CMakeFiles/sw_core.dir/sweep.cc.o"
  "CMakeFiles/sw_core.dir/sweep.cc.o.d"
  "CMakeFiles/sw_core.dir/system.cc.o"
  "CMakeFiles/sw_core.dir/system.cc.o.d"
  "libsw_core.a"
  "libsw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
