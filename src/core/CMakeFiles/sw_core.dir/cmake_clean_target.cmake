file(REMOVE_RECURSE
  "libsw_core.a"
)
