/**
 * @file
 * Top-level system assembly: cores with persist engines, the
 * coherent cache hierarchy, PM and DRAM controllers, the lock table,
 * and the event queue — configured per Table I of the paper.
 *
 * A System executes one op stream per core, supports running to
 * completion or to an arbitrary crash point, and records the persist
 * trace (ADR admissions) for order validation.
 */

#ifndef CORE_SYSTEM_HH
#define CORE_SYSTEM_HH

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/domain_partition.hh"
#include "core/observer.hh"
#include "cpu/core.hh"
#include "persist/design.hh"
#include "runtime/layout.hh"
#include "sim/snapshot.hh"

namespace strand
{

/** Whole-system configuration. */
struct SystemConfig
{
    unsigned numCores = 8;
    HwDesign design = HwDesign::StrandWeaver;
    EngineConfig engine;
    CoreParams core;
    HierarchyParams caches;
    /**
     * Install preloaded data and the undo-log buffers into the L2
     * before the run, modeling the steady-state residency a long
     * (50K-op) run reaches; short replays would otherwise be
     * dominated by one-time cold misses.
     */
    bool warmCaches = true;
    /** Log/heap geometry; governs the warm-cache prewarm range. */
    LogLayout layout;
    MemControllerParams pm;
    MemControllerParams dram = dramControllerParams();
    /**
     * Fuzzing hook (non-owning; must outlive the System). Copied
     * into the engine and cache configs at construction so every
     * legal-reordering site consults the same adversary.
     */
    DrainAdversary *adversary = nullptr;
    /**
     * PDES domains requested for this machine's run loop (0 = defer
     * to SW_SHARDS; 1 = classic serial loop). The partitioner caps
     * the request at the number of separable affinity classes
     * (1 + nCores for the production port-based graph); either way
     * results are bit-identical at any value — sharding is a
     * performance knob, never a semantics knob.
     */
    unsigned shards = 0;
    /**
     * Lock-step window width in ticks for the sharded run loop
     * (0 = defer to SW_WINDOW_TICKS, then to the partition's
     * minimum cross-domain lookahead).
     */
    Tick windowTicks = 0;
};

/**
 * A complete simulated machine.
 */
class System : public stats::StatGroup
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    MemoryImage &memory() { return image; }
    EventQueue &eventQueue() { return eq; }
    Hierarchy &hierarchy() { return *caches; }
    MemController &pmController() { return *pmCtrl; }
    Core &core(CoreId id) { return *cores.at(id); }
    unsigned numCores() const { return cores.size(); }
    const SystemConfig &config() const { return cfg; }

    /** Seed words as already-durable initial state. */
    void seedImage(
        const std::unordered_map<Addr, std::uint64_t> &words);

    /** Install one op stream per core (size must match). */
    void loadStreams(std::vector<OpStream> streams);

    /**
     * Run to completion.
     * @return the tick at which the last core finished.
     */
    Tick run();

    /**
     * Run until @p limit or completion, whichever is first. Calls
     * are resumable: a later call with a larger limit continues the
     * same execution, so a harness can advance a run crash point by
     * crash point, snapshotting between segments.
     * @return true if all cores finished.
     */
    bool runUntil(Tick limit);

    /**
     * Attach a persist-event observer (non-owning; must outlive the
     * System, and must be detached before destruction if it is
     * shorter-lived than the run). Observers are notified in
     * registration order on every event — multiple subscribers
     * coexist, unlike the old single-slot setPersistHook.
     */
    void addObserver(PersistObserver *obs) { hub.add(obs); }

    /** Detach a previously attached observer. */
    void removeObserver(PersistObserver *obs) { hub.remove(obs); }

    /** The event fan-out point (producers publish through this). */
    ObserverHub &observerHub() { return hub; }

    /** Simulate a failure: freeze PM, discard volatile state. */
    void crash() { image.crash(); }

    bool
    finishedAll() const
    {
        for (const auto &core : cores)
            if (!core->finished())
                return false;
        return true;
    }

    /** Persist trace (in ADR admission order). */
    const std::vector<PersistRecord> &persistTrace() const
    {
        return persists;
    }

    /** Aggregate CLWBs issued by all cores' engines (CKC metric). */
    double totalClwbs() const;

    /** Aggregate persist-induced stall cycles (Figure 8 metric). */
    double totalPersistStalls() const;

    /** Total active cycles summed over cores. */
    double totalCycles() const;

    /** Total ops committed over cores (host-throughput metric). */
    double totalCommitted() const;

    /** Kernel events serviced by this system's queue so far. */
    std::uint64_t eventsServiced() const { return eq.serviced(); }

    /** @name PDES sharding (SW_SHARDS) @{ */

    /** Shards requested for this machine (config, then SW_SHARDS). */
    unsigned requestedShards() const;

    /**
     * The resolved domain partition (computed on first use). With
     * the production graph every core group reaches the shared
     * fabric through MemPort mailboxes whose legs declare positive
     * latency, so nothing fuses: the separable classes are "shared"
     * plus one per core, and the window is the minimum declared
     * port-leg latency (crossEdges records each surviving edge).
     */
    const DomainPartition &domainPartition();

    /**
     * Window width the sharded run loop uses: the config override,
     * then SW_WINDOW_TICKS, then the partition's lookahead.
     */
    Tick shardWindowTicks();

    /** Lock-step windows executed by the sharded run loop so far. */
    std::uint64_t shardWindows() const { return pdesWindows; }

    /** @} */

    /** The tick at which the last core finished. */
    Tick finishTick() const { return lastFinish; }

    /** The tick at which core @p id finished (0 if still running). */
    Tick
    finishTickOf(CoreId id) const
    {
        return coreFinish.at(id);
    }

    /** @name Full-machine mid-run snapshot @{ */

    /**
     * Capture the whole machine: the event-queue kernel state, the
     * memory image, the lock table, run bookkeeping, every component
     * in the graph (controllers, hierarchy, cores with their persist
     * engines), and all statistics. The capture walks the graph by
     * dotted instance name and is only valid for restore() on this
     * same System instance — in-flight callbacks reference the live
     * objects.
     */
    SimSnapshot snapshot() const;

    /**
     * Rewind the machine to @p snap. Determinism contract: restoring
     * a mid-run capture and re-running reproduces the uninterrupted
     * run bit-identically (same persist trace, finish ticks, and
     * stats) at fixed seeds.
     */
    void restore(const SimSnapshot &snap);

    /** @} */

  private:
    /** Start the cores exactly once across run()/runUntil() calls. */
    void startCores();

    /**
     * The internal persist-trace recorder is itself an observer —
     * registered first, so persistTrace() is complete by the time any
     * user-attached observer sees the same admission.
     */
    struct TraceRecorder final : PersistObserver
    {
        explicit TraceRecorder(std::vector<PersistRecord> &out)
            : out(out)
        {}

        void
        onPersistAdmitted(const PersistRecord &rec) override
        {
            out.push_back(rec);
        }

        std::vector<PersistRecord> &out;
    };

    /** Run bookkeeping captured by snapshot(). */
    struct RunState
    {
        std::vector<PersistRecord> persists;
        std::vector<Tick> coreFinish;
        Tick lastFinish = 0;
        bool streamsLoaded = false;
        bool coresStarted = false;
        std::uint64_t pdesWindows = 0;
    };

    /**
     * Advance the run in lock-step lookahead windows up to @p limit
     * (maxTick = to completion). Event processing is identical to
     * the serial loop — windows only bound how far the kernel is
     * asked to advance per step — so results are bit-identical.
     */
    void runWindowed(Tick limit);

    SystemConfig cfg;
    EventQueue eq;
    MemoryImage image;
    std::unique_ptr<MemController> pmCtrl;
    std::unique_ptr<MemController> dramCtrl;
    std::unique_ptr<Hierarchy> caches;
    LockTable locks;
    std::vector<std::unique_ptr<Core>> cores;
    std::vector<PersistRecord> persists;
    ObserverHub hub;
    TraceRecorder traceRecorder{persists};
    std::vector<Tick> coreFinish;
    Tick lastFinish = 0;
    bool streamsLoaded = false;
    bool coresStarted = false;
    /** Resolved lazily by domainPartition(). */
    std::optional<DomainPartition> part;
    std::uint64_t pdesWindows = 0;
};

} // namespace strand

#endif // CORE_SYSTEM_HH
