/**
 * @file
 * The multi-subscriber persist-event observer API.
 *
 * A System publishes structured events from the persist machinery —
 * ADR admissions at the PM controller, dispatch and retirement of
 * persist primitives at the per-core engines, and VMO conflict edges
 * at the cache hierarchy — through one ObserverHub. Any number of
 * PersistObserver subscribers may attach (the crash harness, the
 * fuzz-trial injector and trace hasher, throughput tallies, PMO-san);
 * they are notified in registration order, which makes multi-observer
 * runs deterministic and lets sweep cells stay byte-identical at any
 * SW_JOBS. This replaces the old single-slot System::setPersistHook,
 * whose last-writer-wins std::function silently clobbered earlier
 * subscribers.
 *
 * Observers are non-owning and must outlive the System. The hub
 * asserts that no event fires during System teardown and that the
 * subscriber list is never mutated from inside a notification.
 */

#ifndef CORE_OBSERVER_HH
#define CORE_OBSERVER_HH

#include <algorithm>
#include <vector>

#include "mem/packet.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/** One persist event observed at the PM controller (ADR admission). */
struct PersistRecord
{
    Addr lineAddr;
    Tick when;
    CoreId requester;
    WriteOrigin origin;

    bool operator==(const PersistRecord &) const = default;
};

/** Classification of a persist primitive for observer events. */
enum class PrimitiveKind : std::uint8_t
{
    Clwb,       ///< a cache-line write-back toward PM
    Barrier,    ///< persist barrier / ofence / SFENCE
    NewStrand,  ///< strand separator
    JoinStrand, ///< join / dfence (full drain)
    Other,      ///< a non-persist op carrying ordering intents
};

/**
 * One persist primitive passing a pipeline milestone. Dispatch events
 * fire in program order per core; retirement events fire when the
 * primitive completes in its engine (for a CLWB: when the flush
 * acknowledges, i.e. at ADR admission of a dirty line or after the
 * lookup of a clean one).
 */
struct PrimitiveEvent
{
    CoreId core = 0;
    PrimitiveKind kind = PrimitiveKind::Other;
    /** Dispatch sequence number in the core's shared seq space. */
    SeqNum seq = 0;
    /** Line address (CLWB only; 0 otherwise). */
    Addr lineAddr = 0;
    Tick when = 0;
    /**
     * Design-independent ordering intents attached before this op
     * (kIntentNewStrand / kIntentJoin / kIntentBarrier bits from
     * cpu/op.hh, applied in that order). They describe the *intended*
     * strand-persistency ordering of the instrumented program even
     * when the target design emits no hardware primitive for it.
     */
    std::uint8_t intents = 0;
    /** Retirement only: the flush found no dirty data anywhere. */
    bool clean = false;
};

/**
 * A VMO conflict edge: ownership of a dirty line moved between cores
 * (a read-exclusive snoop hit a Modified remote copy), ordering the
 * source core's earlier stores before the requester's later ones.
 */
struct ConflictEdgeEvent
{
    Addr lineAddr = 0;
    CoreId from = 0; ///< previous dirty owner
    CoreId to = 0;   ///< requesting core
    Tick when = 0;
};

/**
 * Subscriber interface. Default implementations ignore everything,
 * so observers override only the events they consume.
 */
class PersistObserver
{
  public:
    virtual ~PersistObserver() = default;

    /** A line entered the ADR persist domain at the PM controller. */
    virtual void onPersistAdmitted(const PersistRecord &rec)
    {
        (void)rec;
    }

    /** A persist primitive (or intent carrier) dispatched, in
     * program order per core. */
    virtual void onPrimitiveDispatched(const PrimitiveEvent &ev)
    {
        (void)ev;
    }

    /** A persist primitive completed in its engine. */
    virtual void onPrimitiveRetired(const PrimitiveEvent &ev)
    {
        (void)ev;
    }

    /** Dirty-line ownership moved between cores. */
    virtual void onConflictEdge(const ConflictEdgeEvent &ev)
    {
        (void)ev;
    }
};

/**
 * Fan-out point owned by the System; producers (engines, hierarchy,
 * cores, the PM-controller forwarder) hold a pointer and publish
 * through it. Subscribers are notified in registration order.
 */
class ObserverHub
{
  public:
    /** @return true when at least one observer is attached. */
    bool active() const { return !observers.empty(); }

    void
    add(PersistObserver *obs)
    {
        panicIf(notifying, "observer added during notification");
        panicIf(tearingDown, "observer added during teardown");
        panicIf(!obs, "null observer");
        panicIf(std::find(observers.begin(), observers.end(), obs) !=
                    observers.end(),
                "observer registered twice");
        observers.push_back(obs);
    }

    void
    remove(PersistObserver *obs)
    {
        panicIf(notifying, "observer removed during notification");
        auto it = std::find(observers.begin(), observers.end(), obs);
        panicIf(it == observers.end(),
                "removing an observer that is not registered");
        observers.erase(it);
    }

    /** Entering the owning System's destructor: any event after this
     * point would reach observers with a half-destroyed System. */
    void beginTeardown() { tearingDown = true; }

    void
    persistAdmitted(const PersistRecord &rec)
    {
        notify([&](PersistObserver &o) { o.onPersistAdmitted(rec); });
    }

    void
    primitiveDispatched(const PrimitiveEvent &ev)
    {
        notify([&](PersistObserver &o) { o.onPrimitiveDispatched(ev); });
    }

    void
    primitiveRetired(const PrimitiveEvent &ev)
    {
        notify([&](PersistObserver &o) { o.onPrimitiveRetired(ev); });
    }

    void
    conflictEdge(const ConflictEdgeEvent &ev)
    {
        notify([&](PersistObserver &o) { o.onConflictEdge(ev); });
    }

  private:
    template <typename Fn>
    void
    notify(Fn &&fn)
    {
        if (observers.empty())
            return;
        panicIf(tearingDown,
                "persist event published during System teardown");
        notifying = true;
        // Index loop: registration order, and any accidental
        // mutation mid-notification is caught by the panics above
        // rather than invalidating an iterator.
        for (std::size_t i = 0; i < observers.size(); ++i)
            fn(*observers[i]);
        notifying = false;
    }

    std::vector<PersistObserver *> observers;
    bool notifying = false;
    bool tearingDown = false;
};

} // namespace strand

#endif // CORE_OBSERVER_HH
