/**
 * @file
 * Point-in-time capture and restore of simulation state.
 *
 * Forked-snapshot crash exploration (src/crash/) runs one warm
 * simulation, then forks at each selected crash point so only the
 * Figure 6 recovery protocol re-executes — O(run + points x recovery)
 * instead of O(points x run). The fork needs a faithful copy of the
 * machine, so every component that participates exposes its state
 * through this layer:
 *
 *  - SimSnapshot is a typed key/value bag: components write their
 *    state under their dotted instance name and read it back by
 *    exact type. Values are stored by copy.
 *  - Snapshotable is the component interface. The default
 *    implementations PANIC: a component that has not audited its
 *    state for capture (closure-holding queues, in-flight MSHRs)
 *    must fail loudly rather than silently fork half a machine.
 *    Components whose volatile state is discarded by a crash anyway
 *    may implement saveState() as a quiescence check.
 *
 * EventQueue::snapshot()/restore() (the kernel side of the same
 * discipline) live on EventQueue directly, since the queue is not a
 * SimObject.
 */

#ifndef SIM_SNAPSHOT_HH
#define SIM_SNAPSHOT_HH

#include <any>
#include <map>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace strand
{

/**
 * One capture of a component tree. Keys are dotted instance names
 * ("system.cpu0.dcache"); each key is written at most once per
 * capture, and reads require the exact stored type.
 */
class SimSnapshot
{
  public:
    /** Store @p value under @p key. Panics on duplicate keys. */
    template <typename T>
    void
    put(const std::string &key, T value)
    {
        panicIf(slots.count(key) != 0,
                "snapshot key '{}' captured twice", key);
        bytes += key.size() + slotBytes(value);
        slots.emplace(key, std::move(value));
    }

    /** @return the value stored under @p key as a T. */
    template <typename T>
    const T &
    get(const std::string &key) const
    {
        auto it = slots.find(key);
        panicIf(it == slots.end(), "snapshot key '{}' missing", key);
        const T *value = std::any_cast<T>(&it->second);
        panicIf(!value, "snapshot key '{}' holds a different type",
                key);
        return *value;
    }

    bool has(const std::string &key) const
    {
        return slots.count(key) != 0;
    }

    /** Number of captured keys. */
    std::size_t size() const { return slots.size(); }

    /** Every captured key, in sorted (map) order. */
    std::vector<std::string>
    keys() const
    {
        std::vector<std::string> out;
        out.reserve(slots.size());
        for (const auto &[key, value] : slots)
            out.push_back(key);
        return out;
    }

    /**
     * Approximate size of the captured state in bytes: the static
     * footprint of every stored value, plus the element payload of
     * values that are sized containers (one nesting level deep).
     * Good enough to tell a half-captured machine from a full one in
     * a log line; not an allocator-accurate measurement.
     */
    std::size_t approxBytes() const { return bytes; }

  private:
    template <typename T>
    static std::size_t
    slotBytes(const T &value)
    {
        if constexpr (requires {
                          value.size();
                          typename T::value_type;
                      }) {
            return sizeof(T) +
                   value.size() * sizeof(typename T::value_type);
        } else {
            return sizeof(T);
        }
    }

    std::map<std::string, std::any> slots;
    std::size_t bytes = 0;
};

/**
 * Interface for components that can be captured into / restored from
 * a SimSnapshot. Restore contracts are component-local, but the
 * common one is: restore into the same component graph the capture
 * was taken from (same objects, same wiring), never into a freshly
 * built system — callbacks and intrusive pointers reference the
 * original objects.
 */
class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;

    /**
     * Name used in snapshot diagnostics. SimObject routes this to
     * its dotted instance name; adapter shims for non-SimObject
     * state (EventQueue, Rng) override it with the key they capture
     * under, so the default panics below always name the offender.
     */
    virtual std::string snapshotName() const = 0;

    /** Capture this component's state into @p snap. */
    virtual void saveState(SimSnapshot &snap) const;
    /** Restore this component's state from @p snap. */
    virtual void restoreState(const SimSnapshot &snap);
};

inline void
Snapshotable::saveState(SimSnapshot &) const
{
    panic("{} does not support snapshot capture", snapshotName());
}

inline void
Snapshotable::restoreState(const SimSnapshot &)
{
    panic("{} does not support snapshot restore", snapshotName());
}

} // namespace strand

#endif // SIM_SNAPSHOT_HH
