/**
 * @file
 * Point-in-time capture and restore of simulation state.
 *
 * Forked-snapshot crash exploration (src/crash/) runs one warm
 * simulation, then forks at each selected crash point so only the
 * Figure 6 recovery protocol re-executes — O(run + points x recovery)
 * instead of O(points x run). The fork needs a faithful copy of the
 * machine, so every component that participates exposes its state
 * through this layer:
 *
 *  - SimSnapshot is a typed key/value bag: components write their
 *    state under their dotted instance name and read it back by
 *    exact type. Values are stored by copy.
 *  - Snapshotable is the component interface. The default
 *    implementations PANIC: a component that has not audited its
 *    state for capture (closure-holding queues, in-flight MSHRs)
 *    must fail loudly rather than silently fork half a machine.
 *    Components whose volatile state is discarded by a crash anyway
 *    may implement saveState() as a quiescence check.
 *
 * EventQueue::snapshot()/restore() (the kernel side of the same
 * discipline) live on EventQueue directly, since the queue is not a
 * SimObject.
 */

#ifndef SIM_SNAPSHOT_HH
#define SIM_SNAPSHOT_HH

#include <any>
#include <map>
#include <string>

#include "sim/logging.hh"

namespace strand
{

/**
 * One capture of a component tree. Keys are dotted instance names
 * ("system.cpu0.dcache"); each key is written at most once per
 * capture, and reads require the exact stored type.
 */
class SimSnapshot
{
  public:
    /** Store @p value under @p key. Panics on duplicate keys. */
    template <typename T>
    void
    put(const std::string &key, T value)
    {
        panicIf(slots.count(key) != 0,
                "snapshot key '{}' captured twice", key);
        slots.emplace(key, std::move(value));
    }

    /** @return the value stored under @p key as a T. */
    template <typename T>
    const T &
    get(const std::string &key) const
    {
        auto it = slots.find(key);
        panicIf(it == slots.end(), "snapshot key '{}' missing", key);
        const T *value = std::any_cast<T>(&it->second);
        panicIf(!value, "snapshot key '{}' holds a different type",
                key);
        return *value;
    }

    bool has(const std::string &key) const
    {
        return slots.count(key) != 0;
    }

    /** Number of captured keys. */
    std::size_t size() const { return slots.size(); }

  private:
    std::map<std::string, std::any> slots;
};

/**
 * Interface for components that can be captured into / restored from
 * a SimSnapshot. Restore contracts are component-local, but the
 * common one is: restore into the same component graph the capture
 * was taken from (same objects, same wiring), never into a freshly
 * built system — callbacks and intrusive pointers reference the
 * original objects.
 */
class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;

    /** Capture this component's state into @p snap. */
    virtual void saveState(SimSnapshot &snap) const;
    /** Restore this component's state from @p snap. */
    virtual void restoreState(const SimSnapshot &snap);
};

inline void
Snapshotable::saveState(SimSnapshot &) const
{
    panic("component does not support snapshot capture");
}

inline void
Snapshotable::restoreState(const SimSnapshot &)
{
    panic("component does not support snapshot restore");
}

} // namespace strand

#endif // SIM_SNAPSHOT_HH
