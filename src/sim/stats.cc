#include "sim/stats.hh"

#include <algorithm>
#include <numeric>

namespace strand::stats
{

StatBase::StatBase(StatGroup *parent, std::string name, std::string desc)
    : statName(std::move(name)), statDesc(std::move(desc))
{
    panicIf(parent == nullptr, "stat '{}' created without a group",
            statName);
    parent->addStat(this);
}

void
Scalar::print(std::ostream &os, const std::string &prefix) const
{
    os << sformat("{}{} {:.6g} # {}\n", prefix, name(), total,
                      description());
}

Vector::Vector(StatGroup *parent, std::string name, std::string desc,
               std::size_t size)
    : StatBase(parent, std::move(name), std::move(desc)),
      values(size, 0.0), names(size)
{
}

void
Vector::subname(std::size_t idx, std::string name)
{
    panicIf(idx >= names.size(), "stat vector subname index out of range");
    names[idx] = std::move(name);
}

double
Vector::sum() const
{
    return std::accumulate(values.begin(), values.end(), 0.0);
}

void
Vector::print(std::ostream &os, const std::string &prefix) const
{
    for (std::size_t i = 0; i < values.size(); ++i) {
        std::string bucket =
            names[i].empty() ? std::to_string(i) : names[i];
        os << sformat("{}{}::{} {:.6g} # {}\n", prefix, name(),
                          bucket, values[i], description());
    }
    os << sformat("{}{}::total {:.6g} # {}\n", prefix, name(), sum(),
                      description());
}

void
Vector::reset()
{
    std::fill(values.begin(), values.end(), 0.0);
}

void
Histogram::print(std::ostream &os, const std::string &prefix) const
{
    os << sformat(
        "{}{}::samples {} # {}\n{}{}::mean {:.6g} # {}\n"
        "{}{}::min {:.6g} # {}\n{}{}::max {:.6g} # {}\n",
        prefix, name(), count, description(), prefix, name(), mean(),
        description(), prefix, name(), min(), description(), prefix,
        name(), max(), description());
}

void
Histogram::reset()
{
    count = 0;
    total = 0.0;
    minSeen = std::numeric_limits<double>::max();
    maxSeen = std::numeric_limits<double>::lowest();
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : name(std::move(name)), parent(parent)
{
    if (parent)
        parent->addChild(this);
}

StatGroup::~StatGroup()
{
    if (parent)
        parent->removeChild(this);
}

void
StatGroup::removeChild(StatGroup *child)
{
    auto it = std::find(childList.begin(), childList.end(), child);
    if (it != childList.end())
        childList.erase(it);
}

void
StatGroup::printStats(std::ostream &os, const std::string &prefix) const
{
    std::string full = prefix.empty() ? name + "." : prefix + name + ".";
    for (const StatBase *stat : statList)
        stat->print(os, full);
    for (const StatGroup *child : childList)
        child->printStats(os, full);
}

void
StatGroup::resetStats()
{
    for (StatBase *stat : statList)
        stat->reset();
    for (StatGroup *child : childList)
        child->resetStats();
}

void
StatGroup::visitStats(
    const std::function<void(const std::string &, const StatBase &)>
        &visitor,
    const std::string &prefix) const
{
    std::string full = prefix.empty() ? name + "." : prefix + name + ".";
    for (const StatBase *stat : statList)
        visitor(full + stat->name(), *stat);
    for (const StatGroup *child : childList)
        child->visitStats(visitor, full);
}

std::string
StatGroup::fullName() const
{
    return parent ? parent->fullName() + "." + name : name;
}

StatGroup::StatValues
StatGroup::snapshotStats() const
{
    StatValues values;
    visitStats([&values](const std::string &full, const StatBase &stat) {
        bool inserted =
            values.emplace(full, stat.snapshotValues()).second;
        panicIf(!inserted, "stat capture: duplicate full name {}", full);
    });
    return values;
}

void
StatGroup::restoreStats(const StatValues &values)
{
    std::size_t restored = 0;
    restoreStatsImpl(values, "", restored);
    panicIf(restored != values.size(),
            "stat restore into {}: {} captured stats have no "
            "matching stat in the tree",
            name, values.size() - restored);
}

void
StatGroup::restoreStatsImpl(const StatValues &values,
                            const std::string &prefix,
                            std::size_t &restored)
{
    std::string full = prefix.empty() ? name + "." : prefix + name + ".";
    for (StatBase *stat : statList) {
        auto it = values.find(full + stat->name());
        panicIf(it == values.end(),
                "stat restore: no captured value for {}",
                full + stat->name());
        stat->restoreValues(it->second);
        ++restored;
    }
    for (StatGroup *child : childList)
        child->restoreStatsImpl(values, full, restored);
}

} // namespace strand::stats
