/**
 * @file
 * Minimal string formatting used until the toolchain ships
 * std::format. Supports "{}" placeholders and a "{:.Ng}" precision
 * spec for floating-point values; unmatched placeholders render
 * verbatim and excess arguments are ignored.
 */

#ifndef SIM_FORMAT_HH
#define SIM_FORMAT_HH

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>

namespace strand
{

namespace detail
{

/** Render one value honoring an optional "{:.Ng}" style spec. */
template <typename T>
void
renderArg(std::ostringstream &os, std::string_view spec, const T &value)
{
    if constexpr (std::is_floating_point_v<T>) {
        if (spec.size() >= 3 && spec[0] == ':' && spec[1] == '.') {
            std::size_t digits = 0;
            std::size_t i = 2;
            while (i < spec.size() && spec[i] >= '0' && spec[i] <= '9') {
                digits = digits * 10 + (spec[i] - '0');
                ++i;
            }
            auto old = os.precision(static_cast<int>(digits));
            os << value;
            os.precision(old);
            return;
        }
    }
    os << value;
}

inline void
formatStep(std::ostringstream &os, std::string_view &fmt)
{
    // No arguments left: emit the rest, collapsing escaped braces.
    while (!fmt.empty()) {
        if (fmt.size() >= 2 && (fmt.substr(0, 2) == "{{" ||
                                fmt.substr(0, 2) == "}}")) {
            os << fmt[0];
            fmt.remove_prefix(2);
            continue;
        }
        os << fmt[0];
        fmt.remove_prefix(1);
    }
}

template <typename First, typename... Rest>
void
formatStep(std::ostringstream &os, std::string_view &fmt,
           const First &first, const Rest &...rest)
{
    while (!fmt.empty()) {
        if (fmt.size() >= 2 && fmt.substr(0, 2) == "{{") {
            os << '{';
            fmt.remove_prefix(2);
            continue;
        }
        if (fmt.size() >= 2 && fmt.substr(0, 2) == "}}") {
            os << '}';
            fmt.remove_prefix(2);
            continue;
        }
        if (fmt[0] == '{') {
            std::size_t close = fmt.find('}');
            if (close == std::string_view::npos) {
                // Unterminated placeholder: emit verbatim.
                os << fmt;
                fmt = {};
                return;
            }
            std::string_view spec = fmt.substr(1, close - 1);
            renderArg(os, spec, first);
            fmt.remove_prefix(close + 1);
            formatStep(os, fmt, rest...);
            return;
        }
        os << fmt[0];
        fmt.remove_prefix(1);
    }
}

} // namespace detail

/** Format @p fmt with "{}" placeholders substituted in order. */
template <typename... Args>
std::string
sformat(std::string_view fmt, const Args &...args)
{
    std::ostringstream os;
    std::string_view rest = fmt;
    detail::formatStep(os, rest, args...);
    return os.str();
}

} // namespace strand

#endif // SIM_FORMAT_HH
