/**
 * @file
 * Statistics package.
 *
 * Components declare named statistics inside a StatGroup. Supported
 * kinds: Scalar (a counter or accumulator), Vector (a fixed array of
 * scalars with per-bucket names), and Histogram (sample
 * distribution with min/max/mean). Groups nest, and a whole tree can
 * be dumped in a stable text format or visited programmatically.
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace strand::stats
{

class StatGroup;

/** Base class for a single named statistic. */
class StatBase
{
  public:
    StatBase(StatGroup *parent, std::string name, std::string desc);
    virtual ~StatBase() = default;

    StatBase(const StatBase &) = delete;
    StatBase &operator=(const StatBase &) = delete;

    const std::string &name() const { return statName; }
    const std::string &description() const { return statDesc; }

    /** Print one or more lines of "<full-name> <value> # <desc>". */
    virtual void print(std::ostream &os,
                       const std::string &prefix) const = 0;

    /** Reset the statistic to its initial state. */
    virtual void reset() = 0;

    /** Capture the raw values as doubles (snapshot support). */
    virtual std::vector<double> snapshotValues() const = 0;

    /** Restore a capture taken by snapshotValues() on this stat. */
    virtual void restoreValues(const std::vector<double> &vals) = 0;

  private:
    std::string statName;
    std::string statDesc;
};

/** A single additive counter. */
class Scalar : public StatBase
{
  public:
    using StatBase::StatBase;

    Scalar &
    operator+=(double delta)
    {
        total += delta;
        return *this;
    }

    Scalar &
    operator++()
    {
        total += 1.0;
        return *this;
    }

    void set(double v) { total = v; }
    double value() const { return total; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override { total = 0.0; }

    std::vector<double>
    snapshotValues() const override
    {
        return {total};
    }

    void
    restoreValues(const std::vector<double> &vals) override
    {
        panicIf(vals.size() != 1, "scalar stat {} restore size mismatch",
                name());
        total = vals[0];
    }

  private:
    double total = 0.0;
};

/** A fixed-size array of counters with optional per-bucket names. */
class Vector : public StatBase
{
  public:
    Vector(StatGroup *parent, std::string name, std::string desc,
           std::size_t size);

    /** Name an individual bucket for printing. */
    void subname(std::size_t idx, std::string name);

    double &
    operator[](std::size_t idx)
    {
        panicIf(idx >= values.size(), "stat vector index {} out of range",
                idx);
        return values[idx];
    }

    double
    value(std::size_t idx) const
    {
        panicIf(idx >= values.size(), "stat vector index {} out of range",
                idx);
        return values[idx];
    }

    double sum() const;
    std::size_t size() const { return values.size(); }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

    std::vector<double> snapshotValues() const override { return values; }

    void
    restoreValues(const std::vector<double> &vals) override
    {
        panicIf(vals.size() != values.size(),
                "vector stat {} restore size mismatch", name());
        values = vals;
    }

  private:
    std::vector<double> values;
    std::vector<std::string> names;
};

/** A sampled distribution reporting count, mean, min, and max. */
class Histogram : public StatBase
{
  public:
    using StatBase::StatBase;

    void
    sample(double v)
    {
        ++count;
        total += v;
        if (v < minSeen)
            minSeen = v;
        if (v > maxSeen)
            maxSeen = v;
    }

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? total / count : 0.0; }
    double min() const { return count ? minSeen : 0.0; }
    double max() const { return count ? maxSeen : 0.0; }

    void print(std::ostream &os, const std::string &prefix) const override;
    void reset() override;

    /** Sample counts stay far below 2^53, so the double is exact. */
    std::vector<double>
    snapshotValues() const override
    {
        return {static_cast<double>(count), total, minSeen, maxSeen};
    }

    void
    restoreValues(const std::vector<double> &vals) override
    {
        panicIf(vals.size() != 4,
                "histogram stat {} restore size mismatch", name());
        count = static_cast<std::uint64_t>(vals[0]);
        total = vals[1];
        minSeen = vals[2];
        maxSeen = vals[3];
    }

  private:
    std::uint64_t count = 0;
    double total = 0.0;
    double minSeen = std::numeric_limits<double>::max();
    double maxSeen = std::numeric_limits<double>::lowest();
};

/**
 * A named collection of statistics. Groups form a tree; the full
 * name of a stat is the dot-joined path of its ancestors.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    virtual ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    const std::string &groupName() const { return name; }

    /** Full dotted path of this group ("system.cpu0.engine"). */
    std::string fullName() const;

    /** Dump this group and all children. */
    void printStats(std::ostream &os, const std::string &prefix = "") const;

    /** Reset all stats in this group and its children. */
    void resetStats();

    /** Visit every stat in the subtree with its full dotted name. */
    void visitStats(
        const std::function<void(const std::string &, const StatBase &)>
            &visitor,
        const std::string &prefix = "") const;

    /** Raw stat values keyed by full dotted stat name. */
    using StatValues = std::map<std::string, std::vector<double>>;

    /** Capture every stat value in the subtree (snapshot support). */
    StatValues snapshotStats() const;

    /**
     * Restore a capture taken by snapshotStats() on the same tree.
     * Panics when the tree's stats and the captured keys differ —
     * a capture from a different tree shape must fail loudly.
     */
    void restoreStats(const StatValues &values);

  private:
    friend class StatBase;

    void restoreStatsImpl(const StatValues &values,
                          const std::string &prefix,
                          std::size_t &restored);

    void addStat(StatBase *stat) { statList.push_back(stat); }
    void addChild(StatGroup *child) { childList.push_back(child); }
    void removeChild(StatGroup *child);

    std::string name;
    StatGroup *parent;
    std::vector<StatBase *> statList;
    std::vector<StatGroup *> childList;
};

} // namespace strand::stats

#endif // SIM_STATS_HH
