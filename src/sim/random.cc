#include "sim/random.hh"

#include <cmath>

namespace strand
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed through splitmix64 so that nearby seeds give
    // uncorrelated streams, per the xoshiro authors' recommendation.
    std::uint64_t s = seed;
    for (auto &word : state)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    panicIf(bound == 0, "nextBounded with zero bound");
    // Debiased modulo via rejection sampling.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return (next() >> 11) * (1.0 / 9007199254740992.0);
}

namespace
{

double
zeta(std::uint64_t n, double theta)
{
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

} // namespace

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n(n), theta(theta)
{
    panicIf(n == 0, "zipfian over empty domain");
    panicIf(theta < 0.0 || theta >= 1.0, "zipfian theta must be in [0,1)");
    zetan = zeta(n, theta);
    double zeta2 = zeta(2, theta);
    alpha = 1.0 / (1.0 - theta);
    eta = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
          (1.0 - zeta2 / zetan);
}

std::uint64_t
ZipfianGenerator::next(Rng &rng) const
{
    double u = rng.nextDouble();
    double uz = u * zetan;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta))
        return 1;
    auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
    return idx >= n ? n - 1 : idx;
}

} // namespace strand
