/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The event queue dispatches callbacks in (tick, priority, insertion
 * order) order, so simulations are fully deterministic for a given
 * seed and schedule. Events are scheduled by value and may be
 * descheduled through the handle returned by schedule().
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * Relative ordering of events scheduled for the same tick. Lower
 * values run first.
 */
enum class EventPriority : int
{
    /** Coherence and memory responses run before CPU progress. */
    MemoryResponse = 10,
    Default = 20,
    /** Per-cycle CPU evaluation. */
    CpuTick = 30,
    /** Stat sampling and end-of-quantum bookkeeping run last. */
    Stat = 40,
};

/**
 * The central event queue. One instance drives a whole simulated
 * system; components hold a reference and schedule callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Handle used to deschedule a pending event. */
    class Handle
    {
      public:
        Handle() = default;

        /** @return true if this handle refers to a scheduled event. */
        bool
        scheduled() const
        {
            return record && !record->cancelled && !record->done;
        }

      private:
        friend class EventQueue;

        struct Record
        {
            Tick when = 0;
            int priority = 0;
            std::uint64_t seq = 0;
            bool cancelled = false;
            bool done = false;
            Callback callback;
        };

        std::shared_ptr<Record> record;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    Tick curTick() const { return now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must not be in the past.
     * @param cb Callback invoked when the event fires.
     * @param prio Same-tick ordering class.
     * @return Handle that can cancel the event before it fires.
     */
    Handle schedule(Tick when, Callback cb,
                    EventPriority prio = EventPriority::Default);

    /** Schedule a callback @p delta ticks in the future. */
    Handle
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(now + delta, std::move(cb), prio);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or
     * already-cancelled event is a no-op.
     */
    void deschedule(Handle &handle);

    /** @return true if no live events remain. */
    bool empty() const { return liveEvents == 0; }

    /** @return the number of scheduled, not-yet-fired events. */
    std::uint64_t pending() const { return liveEvents; }

    /** @return total events serviced since construction. */
    std::uint64_t serviced() const { return servicedEvents; }

    /**
     * Service the single next event.
     * @return true if an event was serviced, false if empty.
     */
    bool serviceOne();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass
     * @p limit, whichever is first. Events scheduled exactly at
     * @p limit are serviced.
     */
    void runUntil(Tick limit);

  private:
    using RecordPtr = std::shared_ptr<Handle::Record>;

    struct Later
    {
        bool
        operator()(const RecordPtr &a, const RecordPtr &b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            if (a->priority != b->priority)
                return a->priority > b->priority;
            return a->seq > b->seq;
        }
    };

    std::priority_queue<RecordPtr, std::vector<RecordPtr>, Later> heap;
    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t liveEvents = 0;
    std::uint64_t servicedEvents = 0;
};

} // namespace strand

#endif // SIM_EVENT_QUEUE_HH
