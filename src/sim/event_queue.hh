/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The event queue dispatches callbacks in (tick, priority, insertion
 * order) order, so simulations are fully deterministic for a given
 * seed and schedule. Events are scheduled by value and may be
 * descheduled through the handle returned by schedule().
 *
 * Performance model: event records live in a free-list arena owned by
 * the queue, so the steady state of a simulation — cores rescheduling
 * their tick every cycle, memory controllers completing requests —
 * allocates nothing per event. The dispatch heap stores (tick,
 * priority, seq) keys by value; a record's current seq is the source
 * of truth, so cancelled or superseded heap entries are recognized as
 * carcasses when popped and lazy compaction bounds how many carcasses
 * a cancel-heavy workload (e.g. the fuzz adversary's holds) can
 * accumulate. Because the comparator is a total order (seq is
 * unique), compaction never changes dispatch order.
 *
 * Components with a permanent periodic callback should use Recurring:
 * one record, allocated at init() and reused for every firing, with
 * the callback constructed exactly once.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * Relative ordering of events scheduled for the same tick. Lower
 * values run first.
 */
enum class EventPriority : int
{
    /** Coherence and memory responses run before CPU progress. */
    MemoryResponse = 10,
    Default = 20,
    /** Per-cycle CPU evaluation. */
    CpuTick = 30,
    /** Stat sampling and end-of-quantum bookkeeping run last. */
    Stat = 40,
};

/**
 * The central event queue. One instance drives a whole simulated
 * system; components hold a reference and schedule callbacks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    class Recurring;

    /** Handle used to deschedule a pending one-shot event. */
    class Handle
    {
      public:
        Handle() = default;

        /** @return true if this handle refers to a scheduled event. */
        bool
        scheduled() const
        {
            return record && record->state == State::Scheduled &&
                   record->seq == seq;
        }

      private:
        friend class EventQueue;
        friend class Recurring;

        enum class State : std::uint8_t
        {
            /** On the free list (or never allocated). */
            Free,
            /** Live in the heap, will fire unless descheduled. */
            Scheduled,
            /** Allocated (recurring) but not currently armed. */
            Idle,
        };

        struct Record
        {
            Tick when = 0;
            int priority = 0;
            std::uint64_t seq = 0;
            State state = State::Free;
            /** Owned by a Recurring; survives firing, callback kept. */
            bool recurring = false;
            Callback callback;
        };

        Handle(Record *record, std::uint64_t seq)
            : record(record), seq(seq)
        {
        }

        Record *record = nullptr;
        /**
         * The seq this handle was issued for. Records are recycled,
         * so a handle is valid only while the record still carries
         * its seq; a stale handle compares unequal and reads as
         * not-scheduled.
         */
        std::uint64_t seq = 0;
    };

    /**
     * A first-class recurring event: one reusable record that can be
     * re-armed in place from its own callback, with no allocation
     * after init(). This is the intended form for permanent periodic
     * work (per-cycle core ticks, controller completion slots, the
     * hierarchy kick): the callback is constructed exactly once and
     * never copied or moved afterwards.
     *
     * At most one firing may be pending at a time; schedule() panics
     * if the event is already armed. The owning object must not
     * outlive the EventQueue, and the callback must not destroy the
     * Recurring it runs on.
     */
    class Recurring
    {
      public:
        Recurring() = default;
        ~Recurring();

        Recurring(const Recurring &) = delete;
        Recurring &operator=(const Recurring &) = delete;

        /**
         * Bind to @p eq with @p cb. Must be called exactly once
         * before the first schedule().
         */
        void init(EventQueue &eq, Callback cb,
                  EventPriority prio = EventPriority::Default);

        /** @return true once init() has run. */
        bool initialized() const { return owner != nullptr; }

        /** Arm at an absolute tick. Panics if already armed. */
        void schedule(Tick when);

        /** Arm @p delta ticks in the future. */
        void scheduleIn(Tick delta);

        /**
         * Re-arm @p delta ticks ahead, in place. Identical to
         * scheduleIn(); the name documents call sites inside the
         * event's own callback.
         */
        void reschedule(Tick delta) { scheduleIn(delta); }

        /** Cancel the pending firing, if any. */
        void deschedule();

        /** @return true while a firing is pending. */
        bool scheduled() const;

        /** @return the armed tick; only meaningful when scheduled(). */
        Tick when() const { return rec ? rec->when : 0; }

      private:
        EventQueue *owner = nullptr;
        Handle::Record *rec = nullptr;
    };

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** @return the current simulated time. */
    Tick curTick() const { return now; }

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute tick; must not be in the past.
     * @param cb Callback invoked when the event fires.
     * @param prio Same-tick ordering class.
     * @return Handle that can cancel the event before it fires.
     */
    Handle schedule(Tick when, Callback cb,
                    EventPriority prio = EventPriority::Default);

    /** Schedule a callback @p delta ticks in the future. */
    Handle
    scheduleIn(Tick delta, Callback cb,
               EventPriority prio = EventPriority::Default)
    {
        return schedule(now + delta, std::move(cb), prio);
    }

    /**
     * Cancel a pending event. Cancelling an already-fired or
     * already-cancelled event is a no-op. The record is returned to
     * the arena immediately; only its heap entry lingers as a carcass
     * until popped or compacted.
     */
    void deschedule(Handle &handle);

    /** @return true if no live events remain. */
    bool empty() const { return liveEvents == 0; }

    /** @return the number of scheduled, not-yet-fired events. */
    std::uint64_t pending() const { return liveEvents; }

    /** @return total events serviced since construction. */
    std::uint64_t serviced() const { return servicedEvents; }

    /**
     * The tick of the earliest live event, or maxTick when none is
     * pending. Prunes cancelled carcasses off the heap top exactly as
     * serviceOne() would; dispatch order is unaffected. Used by the
     * sharded PDES driver to pick the next lock-step window.
     */
    Tick nextLiveTick();

    /**
     * Service the single next event.
     * @return true if an event was serviced, false if empty.
     */
    bool serviceOne();

    /** Run until the queue drains. */
    void run();

    /**
     * Run until the queue drains or simulated time would pass
     * @p limit, whichever is first. Events scheduled exactly at
     * @p limit are serviced.
     */
    void runUntil(Tick limit);

    /** @name Snapshot support (forked crash exploration) @{ */

    /**
     * A point-in-time capture of the queue: the clock and counters,
     * every arena record's dispatch key and state, and the free-list
     * order. One-shot callbacks are captured by copy; recurring
     * records stay owned by their live Recurring objects, whose
     * callbacks are constructed once and never move — so a restore
     * is only valid against the SAME component graph the capture was
     * taken from (restore() panics when a record's recurring
     * ownership changed across the capture).
     */
    struct Snapshot
    {
        struct RecordState
        {
            Tick when = 0;
            int priority = 0;
            std::uint64_t seq = 0;
            /** Handle::State, stored raw (the enum is private). */
            std::uint8_t state = 0;
            bool recurring = false;
            /** Copied for scheduled one-shots; empty otherwise. */
            Callback callback;
        };

        Tick now = 0;
        std::uint64_t nextSeq = 0;
        std::uint64_t liveEvents = 0;
        std::uint64_t servicedEvents = 0;
        std::uint64_t compactionRuns = 0;
        /** One entry per arena record, in allocation order. */
        std::vector<RecordState> records;
        /** Free list as arena indices, preserving pop order. */
        std::vector<std::size_t> freeList;
    };

    /** Capture the queue. The queue itself is not perturbed. */
    Snapshot snapshot() const;

    /**
     * Rewind the queue to @p snap. Records allocated after the
     * capture are recycled onto the free list; the dispatch heap is
     * rebuilt from the restored records (the comparator is a strict
     * total order, so the pop sequence is exactly the captured one).
     */
    void restore(const Snapshot &snap);

    /** @} */

    /** @name Arena and heap observability (tests, simperf) @{ */

    /** Records ever allocated; stable once the pool has warmed up. */
    std::size_t arenaRecords() const { return arena.size(); }

    /** Records currently on the free list. */
    std::size_t freeRecords() const { return freeList.size(); }

    /**
     * Heap entries whose event was descheduled or superseded and
     * that have not been popped or compacted yet.
     */
    std::size_t
    cancelledPending() const
    {
        return heap.size() - static_cast<std::size_t>(liveEvents);
    }

    /** Total heap entries, live plus carcasses. */
    std::size_t heapEntries() const { return heap.size(); }

    /** Lazy compaction sweeps performed so far. */
    std::uint64_t compactions() const { return compactionRuns; }

    /** @} */

  private:
    using Record = Handle::Record;
    using State = Handle::State;

    /**
     * Dispatch key, copied out of the record at arm time. The record
     * holds the authoritative (seq, state); an entry whose key no
     * longer matches is a carcass and never fires.
     */
    struct HeapEntry
    {
        Tick when = 0;
        int priority = 0;
        std::uint64_t seq = 0;
        Record *rec = nullptr;
    };

    /** Max-heap comparator inverted so the earliest key pops first. */
    struct Later
    {
        bool
        operator()(const HeapEntry &a, const HeapEntry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            if (a.priority != b.priority)
                return a.priority > b.priority;
            return a.seq > b.seq;
        }
    };

    static bool
    live(const HeapEntry &entry)
    {
        return entry.rec->state == State::Scheduled &&
               entry.rec->seq == entry.seq;
    }

    Record *allocRecord();
    void releaseRecord(Record *rec);
    /** Push @p rec's current key; common tail of every arm path. */
    void armRecord(Record *rec, Tick when);
    /** Drop carcass entries once they outnumber the live ones. */
    void maybeCompact();

    friend class Recurring;

    std::vector<HeapEntry> heap;
    /** Arena: deque for pointer stability; records are never freed. */
    std::deque<Record> arena;
    std::vector<Record *> freeList;

    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t liveEvents = 0;
    std::uint64_t servicedEvents = 0;
    std::uint64_t compactionRuns = 0;
};

} // namespace strand

#endif // SIM_EVENT_QUEUE_HH
