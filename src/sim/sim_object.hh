/**
 * @file
 * Base classes for simulated components.
 *
 * A SimObject is a named component with a statistics group and access
 * to the system event queue. A ClockedObject additionally has a clock
 * and converts between its cycles and global ticks.
 */

#ifndef SIM_SIM_OBJECT_HH
#define SIM_SIM_OBJECT_HH

#include <string>

#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace strand
{

/**
 * A named simulation component. Every SimObject is Snapshotable so
 * forked crash exploration can capture/restore whole component
 * trees; the defaults here panic with the instance name, keeping the
 * fail-loudly contract while pointing at the component that has not
 * audited its state yet.
 */
class SimObject : public stats::StatGroup, public Snapshotable
{
  public:
    /**
     * @param name Dotted instance name, e.g. "system.cpu0.dcache".
     * @param eq The system event queue.
     * @param parent Parent statistics group, if any.
     */
    SimObject(std::string name, EventQueue &eq,
              stats::StatGroup *parent = nullptr)
        : stats::StatGroup(std::move(name), parent), eq(eq)
    {
    }

    EventQueue &eventQueue() { return eq; }
    Tick curTick() const { return eq.curTick(); }

    /**
     * Snapshot diagnostics carry the full dotted instance name, so
     * the Snapshotable default panics point at the exact component
     * that has not audited its state yet.
     */
    std::string
    snapshotName() const override
    {
        return fullName();
    }

    /** @name Domain affinity (PDES sharding) @{ */

    /**
     * Tag this component with the PDES domain it follows when the
     * simulation is sharded (SW_SHARDS): per-core components (the
     * core itself, its persist engine and strand buffers) carry
     * "core<N>"; globally shared fabric (cache hierarchy, memory
     * controllers) carries "shared". The partitioner
     * (core/domain_partition.hh) groups components by this tag.
     */
    void
    setDomainAffinity(std::string affinity)
    {
        domainTag = std::move(affinity);
    }

    /** The domain-affinity tag; untagged components are "shared". */
    const std::string &
    domainAffinity() const
    {
        static const std::string shared = "shared";
        return domainTag.empty() ? shared : domainTag;
    }

    /** @} */

  protected:
    EventQueue &eq;

  private:
    std::string domainTag;
};

/** A simulation component driven by a clock. */
class ClockedObject : public SimObject
{
  public:
    /**
     * @param clockPeriod Clock period in ticks (e.g. 500 for 2 GHz).
     */
    ClockedObject(std::string name, EventQueue &eq, Tick clockPeriod,
                  stats::StatGroup *parent = nullptr)
        : SimObject(std::move(name), eq, parent), period(clockPeriod)
    {
        panicIf(clockPeriod == 0, "clock period must be non-zero");
    }

    Tick clockPeriod() const { return period; }

    /** Convert a cycle count to a tick duration. */
    Tick
    cyclesToTicks(Cycles c) const
    {
        return c.value() * period;
    }

    /** Convert a tick duration to whole cycles, rounding up. */
    Cycles
    ticksToCycles(Tick t) const
    {
        return Cycles((t + period - 1) / period);
    }

    /** @return the current time in this object's cycles. */
    Cycles
    curCycle() const
    {
        return Cycles(curTick() / period);
    }

    /**
     * @return the next tick that is aligned to this clock edge and is
     * at least @p delta cycles in the future.
     */
    Tick
    clockEdge(Cycles delta = Cycles(0)) const
    {
        Tick aligned = ((curTick() + period - 1) / period) * period;
        return aligned + delta.value() * period;
    }

  private:
    Tick period;
};

} // namespace strand

#endif // SIM_SIM_OBJECT_HH
