#include "sim/pdes.hh"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace strand
{

ShardedEngine::ShardedEngine(unsigned numDomains)
{
    fatalIf(numDomains == 0, "a sharded engine needs >= 1 domain");
    domains.reserve(numDomains);
    for (unsigned d = 0; d < numDomains; ++d)
        domains.push_back(std::make_unique<EventQueue>());
    edges.resize(static_cast<std::size_t>(numDomains) * numDomains);
    mailboxes.resize(edges.size());
    postSeq.assign(numDomains, 0);
}

EventQueue &
ShardedEngine::domain(DomainId d)
{
    panicIf(d >= domains.size(), "domain {} out of range", d);
    return *domains[d];
}

ShardedEngine::Edge &
ShardedEngine::edge(DomainId src, DomainId dst)
{
    panicIf(src >= domains.size() || dst >= domains.size(),
            "edge ({}, {}) out of range", src, dst);
    return edges[static_cast<std::size_t>(src) * domains.size() + dst];
}

const ShardedEngine::Edge &
ShardedEngine::edge(DomainId src, DomainId dst) const
{
    return const_cast<ShardedEngine *>(this)->edge(src, dst);
}

void
ShardedEngine::connect(DomainId src, DomainId dst, Tick minLatency)
{
    panicIf(src == dst,
            "self-edge on domain {}: schedule directly instead", src);
    panicIf(minLatency == 0,
            "zero-lookahead edge ({}, {}): fuse the domains instead",
            src, dst);
    Edge &e = edge(src, dst);
    e.declared = true;
    e.minLatency = minLatency;
    minEdgeLatency = std::min(minEdgeLatency, minLatency);
}

void
ShardedEngine::post(DomainId src, DomainId dst, Tick deliverAt,
                    EventQueue::Callback cb, EventPriority prio)
{
    panicIf(src == dst,
            "self-post on domain {}: schedule directly instead", src);
    panicIf(!cb, "cross-domain message with empty callback");
    const Edge &e = edge(src, dst);
    panicIf(!e.declared, "post on undeclared edge ({}, {})", src, dst);
    const Tick sendTick = domains[src]->curTick();
    const Tick earliest = e.minLatency >= maxTick - sendTick
                              ? maxTick
                              : sendTick + e.minLatency;
    panicIf(deliverAt < earliest,
            "lookahead violation on edge ({}, {}): deliver at {} < "
            "send {} + min latency {}",
            src, dst, deliverAt, sendTick, e.minLatency);
    Message msg;
    msg.deliverAt = deliverAt;
    msg.priority = static_cast<int>(prio);
    msg.src = src;
    msg.srcSeq = postSeq[src]++;
    msg.dst = dst;
    msg.callback = std::move(cb);
    mailboxes[static_cast<std::size_t>(src) * domains.size() + dst]
        .push_back(std::move(msg));
}

void
ShardedEngine::setWindowTicks(Tick w)
{
    panicIf(w == 0, "window width must be >= 1 tick");
    windowOverride = w;
}

Tick
ShardedEngine::windowTicks() const
{
    return windowOverride ? windowOverride : minEdgeLatency;
}

void
ShardedEngine::mergeMailboxes()
{
    // Deterministic barrier merge: gather every parked message, order
    // by (deliverTick, priority, source domain, per-source seq) — a
    // strict total order — and schedule in exactly that order, so the
    // destination queues assign kernel seqs identically no matter
    // which thread filled which mailbox first.
    std::vector<Message> batch;
    for (std::vector<Message> &box : mailboxes) {
        for (Message &msg : box)
            batch.push_back(std::move(msg));
        box.clear();
    }
    if (batch.empty())
        return;
    std::sort(batch.begin(), batch.end(),
              [](const Message &a, const Message &b) {
                  if (a.deliverAt != b.deliverAt)
                      return a.deliverAt < b.deliverAt;
                  if (a.priority != b.priority)
                      return a.priority < b.priority;
                  if (a.src != b.src)
                      return a.src < b.src;
                  return a.srcSeq < b.srcSeq;
              });
    for (Message &msg : batch) {
        domains[msg.dst]->schedule(
            msg.deliverAt, std::move(msg.callback),
            static_cast<EventPriority>(msg.priority));
        ++delivered;
    }
}

Tick
ShardedEngine::nextEventTick()
{
    Tick earliest = maxTick;
    for (auto &dq : domains)
        earliest = std::min(earliest, dq->nextLiveTick());
    return earliest;
}

void
ShardedEngine::runWindow(Tick limit)
{
    for (auto &dq : domains) {
        if (limit == maxTick)
            dq->run();
        else
            dq->runUntil(limit);
    }
}

void
ShardedEngine::run(unsigned workers)
{
    panicIf(running, "sharded engine re-entered while running");
    running = true;
    const Tick window = windowTicks();
    panicIf(window > lookahead(),
            "window {} exceeds the lookahead {}: a message could land "
            "inside its own window",
            window, lookahead());
    const unsigned n = numDomains();
    workers = std::clamp(workers, 1u, n);

    if (workers == 1) {
        for (;;) {
            mergeMailboxes();
            const Tick start = nextEventTick();
            if (start == maxTick)
                break;
            const Tick limit = window >= maxTick - start
                                   ? maxTick
                                   : start + window - 1;
            runWindow(limit);
            ++windowCount;
        }
        running = false;
        return;
    }

    // Persistent worker pool for the whole run: domains are assigned
    // round-robin (worker w owns domains d with d % workers == w) —
    // the assignment is irrelevant to results, only to load balance.
    // All mailbox/postSeq writes made by a worker happen-before the
    // coordinator's barrier reads via the pool mutex.
    struct Pool
    {
        std::mutex m;
        std::condition_variable cvWork;
        std::condition_variable cvDone;
        std::uint64_t generation = 0;
        unsigned remaining = 0;
        Tick limit = 0;
        bool stop = false;
    } pool;

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        threads.emplace_back([this, &pool, w, workers, n] {
            std::uint64_t seen = 0;
            for (;;) {
                Tick limit = 0;
                {
                    std::unique_lock<std::mutex> lk(pool.m);
                    pool.cvWork.wait(lk, [&] {
                        return pool.stop || pool.generation != seen;
                    });
                    if (pool.stop)
                        return;
                    seen = pool.generation;
                    limit = pool.limit;
                }
                for (unsigned d = w; d < n; d += workers) {
                    if (limit == maxTick)
                        domains[d]->run();
                    else
                        domains[d]->runUntil(limit);
                }
                {
                    std::lock_guard<std::mutex> lk(pool.m);
                    if (--pool.remaining == 0)
                        pool.cvDone.notify_one();
                }
            }
        });
    }

    for (;;) {
        mergeMailboxes();
        const Tick start = nextEventTick();
        if (start == maxTick)
            break;
        const Tick limit =
            window >= maxTick - start ? maxTick : start + window - 1;
        {
            std::lock_guard<std::mutex> lk(pool.m);
            pool.limit = limit;
            pool.remaining = workers;
            ++pool.generation;
        }
        pool.cvWork.notify_all();
        {
            std::unique_lock<std::mutex> lk(pool.m);
            pool.cvDone.wait(lk, [&] { return pool.remaining == 0; });
        }
        ++windowCount;
    }

    {
        std::lock_guard<std::mutex> lk(pool.m);
        pool.stop = true;
    }
    pool.cvWork.notify_all();
    for (std::thread &t : threads)
        t.join();
    running = false;
}

std::uint64_t
ShardedEngine::eventsServiced() const
{
    std::uint64_t total = 0;
    for (const auto &dq : domains)
        total += dq->serviced();
    return total;
}

namespace
{

/** Engine-level counters captured alongside the domain queues. */
struct EngineState
{
    std::uint64_t windowCount = 0;
    std::uint64_t delivered = 0;
    std::vector<std::uint64_t> postSeq;
};

std::string
domainKey(unsigned d)
{
    return "pdes.domain" + std::to_string(d) + ".eq";
}

} // namespace

void
ShardedEngine::saveState(SimSnapshot &snap) const
{
    panicIf(running, "cannot capture a running sharded engine");
    for (const std::vector<Message> &box : mailboxes)
        panicIf(!box.empty(),
                "cannot capture in-flight mailbox messages: snapshot "
                "at a window barrier");
    for (unsigned d = 0; d < domains.size(); ++d)
        snap.put(domainKey(d), domains[d]->snapshot());
    EngineState es;
    es.windowCount = windowCount;
    es.delivered = delivered;
    es.postSeq = postSeq;
    snap.put("pdes.engine", std::move(es));
}

void
ShardedEngine::restoreState(const SimSnapshot &snap)
{
    panicIf(running, "cannot restore a running sharded engine");
    for (unsigned d = 0; d < domains.size(); ++d)
        domains[d]->restore(
            snap.get<EventQueue::Snapshot>(domainKey(d)));
    const EngineState &es = snap.get<EngineState>("pdes.engine");
    windowCount = es.windowCount;
    delivered = es.delivered;
    postSeq = es.postSeq;
}

} // namespace strand
