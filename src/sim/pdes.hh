/**
 * @file
 * Conservative time-windowed parallel discrete-event simulation
 * (PDES) on top of the pooled EventQueue kernel.
 *
 * A ShardedEngine owns one EventQueue per *domain* and advances all
 * domains in lock-step windows. The window width W is a lookahead
 * derived from the minimum declared cross-domain edge latency L:
 * because every cross-domain message posted at tick t >= windowStart
 * delivers no earlier than t + L >= windowStart + W = windowEnd, no
 * message can ever land inside the window that produced it — each
 * domain's execution of a window depends only on its own queue
 * contents at the window barrier, so domains are free to run on
 * concurrent worker threads without any cross-domain synchronization
 * until the next barrier.
 *
 * Cross-domain sends go through per-edge mailboxes: during a window
 * an edge's mailbox is appended to only by the source domain's worker
 * thread and read by nobody. At the barrier the coordinator drains
 * every mailbox, sorts the messages by the deterministic merge key
 * (deliverTick, priority, source domain, per-source sequence) and
 * schedules them into the destination queues in that order. Within a
 * domain the kernel's (tick, priority, seq) dispatch order is
 * untouched, and the merge rule fixes the seq assignment of every
 * delivered message — so results are bit-identical for ANY worker
 * count, including the serial one.
 */

#ifndef SIM_PDES_HH
#define SIM_PDES_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/types.hh"

namespace strand
{

/** Identifier of one PDES domain. */
using DomainId = unsigned;

/**
 * A set of event queues advanced in lock-step lookahead windows, with
 * mailbox-mediated cross-domain messaging.
 */
class ShardedEngine
{
  public:
    explicit ShardedEngine(unsigned numDomains);

    ShardedEngine(const ShardedEngine &) = delete;
    ShardedEngine &operator=(const ShardedEngine &) = delete;

    unsigned numDomains() const
    {
        return static_cast<unsigned>(domains.size());
    }

    /** The event queue driving domain @p d. */
    EventQueue &domain(DomainId d);

    /**
     * Declare a directed cross-domain edge. @p minLatency is the
     * modeled minimum delivery latency of the path and becomes part
     * of the engine's lookahead: the window width may not exceed the
     * smallest declared latency. Self-edges are meaningless (schedule
     * directly) and panic.
     */
    void connect(DomainId src, DomainId dst, Tick minLatency);

    /**
     * Post a cross-domain message from @p src (must be called while
     * @p src's window is executing, i.e. from one of its events).
     * The edge must have been declared; @p deliverAt must respect its
     * minimum latency relative to the source domain's current tick.
     * Delivery is scheduled into @p dst at the next window barrier.
     */
    void post(DomainId src, DomainId dst, Tick deliverAt,
              EventQueue::Callback cb,
              EventPriority prio = EventPriority::Default);

    /**
     * Minimum declared cross-domain latency; maxTick when no edges
     * have been declared (a single-domain or fully decoupled engine).
     */
    Tick lookahead() const { return minEdgeLatency; }

    /**
     * Override the window width (default: the lookahead). Values
     * above the lookahead would let a message land inside its own
     * window and panic at run().
     */
    void setWindowTicks(Tick w);

    /** The effective window width run() will use. */
    Tick windowTicks() const;

    /**
     * Run every domain to completion: repeat lock-step windows until
     * all queues drain and no message is in flight. @p workers is
     * clamped to [1, numDomains]; 1 executes the identical window
     * schedule serially on the calling thread. Results (queue
     * contents, clocks, delivered-message order) are bit-identical
     * for every worker count.
     */
    void run(unsigned workers = 1);

    /** @name Observability @{ */

    /** Lock-step windows executed so far. */
    std::uint64_t windows() const { return windowCount; }

    /** Cross-domain messages delivered through barriers so far. */
    std::uint64_t messagesDelivered() const { return delivered; }

    /** Kernel events serviced, summed over all domains. */
    std::uint64_t eventsServiced() const;

    /** @} */

    /** @name Snapshot (per-domain capture keys) @{ */

    /**
     * Capture every domain queue under "pdes.domain<i>.eq". Only
     * legal between runs / at barriers: in-flight mailbox messages
     * are not capturable (their callbacks reference live state) and
     * panic.
     */
    void saveState(SimSnapshot &snap) const;

    /** Rewind every domain queue from a saveState() capture. */
    void restoreState(const SimSnapshot &snap);

    /** @} */

  private:
    /** One directed cross-domain edge and its window mailbox. */
    struct Edge
    {
        bool declared = false;
        Tick minLatency = 0;
    };

    /** A message parked in a mailbox until the next barrier. */
    struct Message
    {
        Tick deliverAt = 0;
        int priority = 0;
        DomainId src = 0;
        /** Per-source posting sequence; breaks all remaining ties. */
        std::uint64_t srcSeq = 0;
        DomainId dst = 0;
        EventQueue::Callback callback;
    };

    Edge &edge(DomainId src, DomainId dst);
    const Edge &edge(DomainId src, DomainId dst) const;

    /** Drain all mailboxes and schedule deliveries (merge rule). */
    void mergeMailboxes();

    /** Earliest live event tick across domains (maxTick if none). */
    Tick nextEventTick();

    /** Run one window up to @p limit serially across all domains. */
    void runWindow(Tick limit);

    /** EventQueue is neither movable nor copyable: box it. */
    std::vector<std::unique_ptr<EventQueue>> domains;
    /** Dense (src * numDomains + dst) edge matrix. */
    std::vector<Edge> edges;
    /**
     * Per-edge mailboxes, same indexing as edges. During a window a
     * mailbox is written only by its source domain's worker; the
     * coordinator reads them strictly after the barrier join.
     */
    std::vector<std::vector<Message>> mailboxes;
    /** Per-source post counters (written only by the source worker). */
    std::vector<std::uint64_t> postSeq;

    Tick minEdgeLatency = maxTick;
    Tick windowOverride = 0;
    std::uint64_t windowCount = 0;
    std::uint64_t delivered = 0;
    bool running = false;
};

} // namespace strand

#endif // SIM_PDES_HH
