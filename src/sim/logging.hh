/**
 * @file
 * Error and status reporting, mirroring gem5's logging idioms.
 *
 * panic()  — an internal simulator invariant was violated; aborts.
 * fatal()  — the user asked for something the simulator cannot do
 *            (bad configuration); exits with an error code.
 * warn()   — functionality may be approximate; simulation continues.
 * inform() — status messages with no connotation of misbehaviour.
 */

#ifndef SIM_LOGGING_HH
#define SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <string_view>

#include "sim/format.hh"

namespace strand
{

/**
 * Verbosity control for the informational channels. Errors always
 * print.
 */
enum class LogLevel
{
    Quiet,  ///< Suppress warn() and inform().
    Normal, ///< Print warnings only.
    Verbose ///< Print warnings and informational messages.
};

/**
 * Global log level; benches set Quiet to keep output clean. Reads
 * and writes are atomic, so sweep worker threads may consult the
 * level while another thread adjusts it.
 */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Tag this thread's warn()/inform() output with a sweep-cell label
 * (e.g. "queue/strandweaver/sfr") so interleaved stderr from
 * parallel cells stays attributable. Empty clears the tag. The label
 * is thread-local; each sweep worker sets it per cell.
 */
void setLogCellLabel(std::string label);
const std::string &logCellLabel();

namespace detail
{

[[noreturn]] void panicImpl(std::string_view where, const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Abort the simulation due to an internal error that should never
 * happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(std::string_view fmt, Args &&...args)
{
    detail::panicImpl("panic", sformat(fmt, args...));
}

/**
 * Terminate the simulation due to a user error such as an invalid
 * configuration.
 */
template <typename... Args>
[[noreturn]] void
fatal(std::string_view fmt, Args &&...args)
{
    detail::fatalImpl(sformat(fmt, args...));
}

/** Alert the user that behaviour may be approximate. */
template <typename... Args>
void
warn(std::string_view fmt, Args &&...args)
{
    detail::warnImpl(sformat(fmt, args...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(std::string_view fmt, Args &&...args)
{
    detail::informImpl(sformat(fmt, args...));
}

/**
 * Assert a simulator invariant; on failure, panic with the given
 * message. Active in all build types, unlike assert().
 */
template <typename... Args>
void
panicIf(bool condition, std::string_view fmt, Args &&...args)
{
    if (condition) {
        detail::panicImpl("panic",
                          sformat(fmt, args...));
    }
}

/** Terminate on a user-caused error condition. */
template <typename... Args>
void
fatalIf(bool condition, std::string_view fmt, Args &&...args)
{
    if (condition)
        detail::fatalImpl(sformat(fmt, args...));
}

} // namespace strand

#endif // SIM_LOGGING_HH
