#include "sim/event_queue.hh"

namespace strand
{

EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    panicIf(when < now,
            "event scheduled in the past: when={} now={}", when, now);
    panicIf(!cb, "event scheduled with empty callback");

    Handle handle;
    handle.record = std::make_shared<Handle::Record>();
    handle.record->when = when;
    handle.record->priority = static_cast<int>(prio);
    handle.record->seq = nextSeq++;
    handle.record->callback = std::move(cb);

    heap.push(handle.record);
    ++liveEvents;
    return handle;
}

void
EventQueue::deschedule(Handle &handle)
{
    if (!handle.scheduled())
        return;
    handle.record->cancelled = true;
    --liveEvents;
}

bool
EventQueue::serviceOne()
{
    while (!heap.empty()) {
        RecordPtr rec = heap.top();
        heap.pop();
        if (rec->cancelled)
            continue;

        panicIf(rec->when < now, "event queue went backwards");
        now = rec->when;
        rec->done = true;
        --liveEvents;
        ++servicedEvents;
        // Move the callback out so that its captures are released
        // promptly even if a handle keeps the record alive.
        Callback cb = std::move(rec->callback);
        cb();
        return true;
    }
    return false;
}

void
EventQueue::run()
{
    while (serviceOne()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty()) {
        // Skip cancelled carcasses without advancing time.
        if (heap.top()->cancelled) {
            heap.pop();
            continue;
        }
        if (heap.top()->when > limit)
            break;
        serviceOne();
    }
    if (now < limit)
        now = limit;
}

} // namespace strand
