#include "sim/event_queue.hh"

#include <algorithm>
#include <unordered_map>

namespace strand
{

EventQueue::Record *
EventQueue::allocRecord()
{
    if (!freeList.empty()) {
        Record *rec = freeList.back();
        freeList.pop_back();
        return rec;
    }
    arena.emplace_back();
    return &arena.back();
}

void
EventQueue::releaseRecord(Record *rec)
{
    rec->callback = nullptr;
    rec->state = State::Free;
    rec->recurring = false;
    freeList.push_back(rec);
}

void
EventQueue::armRecord(Record *rec, Tick when)
{
    rec->when = when;
    rec->seq = nextSeq++;
    rec->state = State::Scheduled;
    heap.push_back({when, rec->priority, rec->seq, rec});
    std::push_heap(heap.begin(), heap.end(), Later{});
    ++liveEvents;
}

void
EventQueue::maybeCompact()
{
    std::size_t carcasses =
        heap.size() - static_cast<std::size_t>(liveEvents);
    if (carcasses <= 64 ||
        carcasses <= static_cast<std::size_t>(liveEvents)) {
        return;
    }
    heap.erase(std::remove_if(heap.begin(), heap.end(),
                              [](const HeapEntry &entry) {
                                  return !live(entry);
                              }),
               heap.end());
    // The comparator is a strict total order (seq is unique), so
    // rebuilding the heap cannot change the pop sequence.
    std::make_heap(heap.begin(), heap.end(), Later{});
    ++compactionRuns;
}

EventQueue::Handle
EventQueue::schedule(Tick when, Callback cb, EventPriority prio)
{
    panicIf(when < now,
            "event scheduled in the past: when={} now={}", when, now);
    panicIf(!cb, "event scheduled with empty callback");

    Record *rec = allocRecord();
    rec->priority = static_cast<int>(prio);
    rec->callback = std::move(cb);
    armRecord(rec, when);
    return Handle(rec, rec->seq);
}

void
EventQueue::deschedule(Handle &handle)
{
    if (!handle.scheduled())
        return;
    // Handles are only issued for one-shots (Recurring cancels via
    // its own deschedule), so the record goes straight back to the
    // pool; its heap entry stays behind as a carcass.
    releaseRecord(handle.record);
    --liveEvents;
    maybeCompact();
}

Tick
EventQueue::nextLiveTick()
{
    while (!heap.empty() && !live(heap.front())) {
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
    }
    return heap.empty() ? maxTick : heap.front().when;
}

bool
EventQueue::serviceOne()
{
    while (!heap.empty()) {
        HeapEntry top = heap.front();
        std::pop_heap(heap.begin(), heap.end(), Later{});
        heap.pop_back();
        if (!live(top))
            continue;

        panicIf(top.when < now, "event queue went backwards");
        now = top.when;
        --liveEvents;
        ++servicedEvents;

        Record *rec = top.rec;
        if (rec->recurring) {
            // Park the record so the callback can re-arm it.
            rec->state = State::Idle;
            rec->callback();
        } else {
            // Release before invoking: the callback has been moved
            // out, so the record is immediately reusable by anything
            // the callback schedules.
            Callback cb = std::move(rec->callback);
            releaseRecord(rec);
            cb();
        }
        return true;
    }
    return false;
}

void
EventQueue::run()
{
    while (serviceOne()) {
    }
}

void
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty()) {
        // Skip cancelled carcasses without advancing time.
        if (!live(heap.front())) {
            std::pop_heap(heap.begin(), heap.end(), Later{});
            heap.pop_back();
            continue;
        }
        if (heap.front().when > limit)
            break;
        serviceOne();
    }
    if (now < limit)
        now = limit;
}

EventQueue::Snapshot
EventQueue::snapshot() const
{
    Snapshot snap;
    snap.now = now;
    snap.nextSeq = nextSeq;
    snap.liveEvents = liveEvents;
    snap.servicedEvents = servicedEvents;
    snap.compactionRuns = compactionRuns;

    snap.records.reserve(arena.size());
    std::unordered_map<const Record *, std::size_t> indexOf;
    indexOf.reserve(arena.size());
    std::size_t index = 0;
    for (const Record &rec : arena) {
        indexOf.emplace(&rec, index++);
        Snapshot::RecordState state;
        state.when = rec.when;
        state.priority = rec.priority;
        state.seq = rec.seq;
        state.state = static_cast<std::uint8_t>(rec.state);
        state.recurring = rec.recurring;
        // Recurring callbacks stay with their owning Recurring and
        // are reused on restore; a fired one-shot's callback has
        // already been moved out, so only scheduled one-shots carry
        // one worth copying.
        if (!rec.recurring && rec.state == State::Scheduled)
            state.callback = rec.callback;
        snap.records.push_back(std::move(state));
    }
    snap.freeList.reserve(freeList.size());
    for (const Record *rec : freeList)
        snap.freeList.push_back(indexOf.at(rec));
    return snap;
}

void
EventQueue::restore(const Snapshot &snap)
{
    panicIf(arena.size() < snap.records.size(),
            "event queue arena shrank across a snapshot");
    std::vector<Record *> byIndex;
    byIndex.reserve(arena.size());
    for (Record &rec : arena)
        byIndex.push_back(&rec);

    now = snap.now;
    nextSeq = snap.nextSeq;
    liveEvents = snap.liveEvents;
    servicedEvents = snap.servicedEvents;
    compactionRuns = snap.compactionRuns;

    heap.clear();
    for (std::size_t i = 0; i < snap.records.size(); ++i) {
        const Snapshot::RecordState &state = snap.records[i];
        Record &rec = *byIndex[i];
        // A record whose Recurring owner was created or destroyed
        // after the capture cannot be rewound: the callback lives in
        // (or died with) the owner. Restore only into the component
        // graph the snapshot was taken from.
        panicIf(rec.recurring != state.recurring,
                "cannot restore: record {} changed recurring "
                "ownership across the snapshot", i);
        rec.when = state.when;
        rec.priority = state.priority;
        rec.seq = state.seq;
        rec.state = static_cast<State>(state.state);
        if (!state.recurring)
            rec.callback = state.callback;
        if (rec.state == State::Scheduled)
            heap.push_back({rec.when, rec.priority, rec.seq, &rec});
    }
    freeList.clear();
    for (std::size_t index : snap.freeList)
        freeList.push_back(byIndex[index]);
    // Records allocated after the capture are unknown to the
    // snapshot: recycle them. They join the free list after the
    // captured entries, which only changes which pooled record a
    // future schedule() reuses — dispatch order is keyed on (when,
    // priority, seq), never on record identity.
    for (std::size_t i = snap.records.size(); i < byIndex.size();
         ++i) {
        Record &rec = *byIndex[i];
        panicIf(rec.recurring,
                "cannot restore: a recurring event was bound after "
                "the snapshot");
        rec.state = State::Free;
        rec.callback = nullptr;
        freeList.push_back(&rec);
    }
    // The comparator is a strict total order (seq is unique), so the
    // rebuilt heap pops in exactly the captured dispatch order.
    std::make_heap(heap.begin(), heap.end(), Later{});
    panicIf(heap.size() != static_cast<std::size_t>(liveEvents),
            "snapshot live-event count does not match its records");
}

EventQueue::Recurring::~Recurring()
{
    if (!owner)
        return;
    deschedule();
    owner->releaseRecord(rec);
}

void
EventQueue::Recurring::init(EventQueue &eq, Callback cb,
                            EventPriority prio)
{
    panicIf(owner, "recurring event initialized twice");
    panicIf(!cb, "recurring event initialized with empty callback");
    owner = &eq;
    rec = eq.allocRecord();
    rec->priority = static_cast<int>(prio);
    rec->recurring = true;
    rec->state = Handle::State::Idle;
    rec->callback = std::move(cb);
}

void
EventQueue::Recurring::schedule(Tick when)
{
    panicIf(!owner, "recurring event scheduled before init");
    panicIf(rec->state == Handle::State::Scheduled,
            "recurring event scheduled while already pending");
    panicIf(when < owner->now,
            "event scheduled in the past: when={} now={}", when,
            owner->now);
    owner->armRecord(rec, when);
}

void
EventQueue::Recurring::scheduleIn(Tick delta)
{
    panicIf(!owner, "recurring event scheduled before init");
    schedule(owner->now + delta);
}

void
EventQueue::Recurring::deschedule()
{
    if (!scheduled())
        return;
    rec->state = Handle::State::Idle;
    --owner->liveEvents;
    owner->maybeCompact();
}

bool
EventQueue::Recurring::scheduled() const
{
    return rec && rec->state == Handle::State::Scheduled;
}

} // namespace strand
