#include "sim/logging.hh"

#include <stdexcept>

namespace strand
{

namespace
{

LogLevel globalLevel = LogLevel::Normal;

} // namespace

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

namespace detail
{

void
panicImpl(std::string_view where, const std::string &msg)
{
    // Throw rather than abort so that library users and tests can
    // observe invariant violations; unhandled, it still terminates.
    throw std::logic_error(std::string(where) + ": " + msg);
}

void
fatalImpl(const std::string &msg)
{
    throw std::invalid_argument("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (globalLevel != LogLevel::Quiet)
        std::cerr << "warn: " << msg << '\n';
}

void
informImpl(const std::string &msg)
{
    if (globalLevel == LogLevel::Verbose)
        std::cerr << "info: " << msg << '\n';
}

} // namespace detail

} // namespace strand
