#include "sim/logging.hh"

#include <atomic>
#include <mutex>
#include <stdexcept>

namespace strand
{

namespace
{

std::atomic<LogLevel> globalLevel{LogLevel::Normal};

/** Serializes multi-part stderr writes from concurrent sweep cells. */
std::mutex &
stderrMutex()
{
    static std::mutex mutex;
    return mutex;
}

thread_local std::string cellLabel;

void
emit(const char *channel, const std::string &msg)
{
    std::lock_guard<std::mutex> lock(stderrMutex());
    if (!cellLabel.empty())
        std::cerr << '[' << cellLabel << "] ";
    std::cerr << channel << ": " << msg << '\n';
}

} // namespace

LogLevel
logLevel()
{
    return globalLevel.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    globalLevel.store(level, std::memory_order_relaxed);
}

void
setLogCellLabel(std::string label)
{
    cellLabel = std::move(label);
}

const std::string &
logCellLabel()
{
    return cellLabel;
}

namespace detail
{

void
panicImpl(std::string_view where, const std::string &msg)
{
    // Throw rather than abort so that library users and tests can
    // observe invariant violations; unhandled, it still terminates.
    // The sweep scheduler catches these per cell, tags them with the
    // cell label, and keeps draining the remaining cells.
    throw std::logic_error(std::string(where) + ": " + msg);
}

void
fatalImpl(const std::string &msg)
{
    throw std::invalid_argument("fatal: " + msg);
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() != LogLevel::Quiet)
        emit("warn", msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() == LogLevel::Verbose)
        emit("info", msg);
}

} // namespace detail

} // namespace strand
