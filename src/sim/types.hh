/**
 * @file
 * Fundamental simulator types: ticks, cycles, addresses.
 *
 * Following the gem5 convention, a Tick is one picosecond of simulated
 * time. Clocked components convert between ticks and their own cycles
 * via a clock period. The evaluated system runs at 2 GHz, so one cycle
 * is 500 ticks.
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace strand
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** A memory address in the simulated physical address space. */
using Addr = std::uint64_t;

/** Identifier for a core / hardware thread. */
using CoreId = std::uint32_t;

/** Monotonic identifier for an operation within a thread's stream. */
using SeqNum = std::uint64_t;

/** The maximum representable tick; used as "never". */
constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Ticks per nanosecond. */
constexpr Tick ticksPerNs = 1000;

/**
 * A count of clock cycles. Thin wrapper so that cycle and tick
 * quantities cannot be mixed accidentally.
 */
class Cycles
{
  public:
    constexpr Cycles() : count(0) {}
    constexpr explicit Cycles(std::uint64_t c) : count(c) {}

    constexpr std::uint64_t value() const { return count; }

    constexpr Cycles
    operator+(Cycles other) const
    {
        return Cycles(count + other.count);
    }

    constexpr Cycles
    operator-(Cycles other) const
    {
        return Cycles(count - other.count);
    }

    Cycles &
    operator+=(Cycles other)
    {
        count += other.count;
        return *this;
    }

    constexpr auto operator<=>(const Cycles &) const = default;

  private:
    std::uint64_t count;
};

/**
 * Convert a duration in nanoseconds to ticks.
 */
constexpr Tick
nsToTicks(std::uint64_t ns)
{
    return ns * ticksPerNs;
}

} // namespace strand

#endif // SIM_TYPES_HH
