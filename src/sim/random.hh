/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload key choice,
 * zipfian skew, crash-point selection in tests) draws from Rng so
 * that every run is reproducible from a single seed.
 */

#ifndef SIM_RANDOM_HH
#define SIM_RANDOM_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace strand
{

/**
 * xoshiro256** generator. Small, fast, and adequate for workload
 * generation; not cryptographic.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    /** @return a uniform 64-bit value. */
    std::uint64_t next();

    /** @return a uniform value in [0, bound). @p bound must be > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** @return a uniform value in [lo, hi]. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        panicIf(lo > hi, "nextRange with lo > hi");
        return lo + nextBounded(hi - lo + 1);
    }

    /** @return a uniform double in [0, 1). */
    double nextDouble();

    /** @return true with probability @p p. */
    bool chance(double p) { return nextDouble() < p; }

    /** @name Snapshot support (forked crash exploration) @{ */

    /** Capture the full generator state. */
    std::array<std::uint64_t, 4>
    saveState() const
    {
        return {state[0], state[1], state[2], state[3]};
    }

    /** Rewind to a state captured with saveState(). */
    void
    restoreState(const std::array<std::uint64_t, 4> &saved)
    {
        for (unsigned i = 0; i < 4; ++i)
            state[i] = saved[i];
    }

    /** @} */

  private:
    std::uint64_t state[4];
};

/**
 * Zipfian distribution over [0, n) with skew theta, computed with the
 * standard Gray et al. rejection-free method. Used by the N-Store
 * YCSB-style load generator.
 */
class ZipfianGenerator
{
  public:
    /**
     * @param n Number of items.
     * @param theta Skew in [0, 1); 0 is uniform, 0.99 is YCSB default.
     */
    ZipfianGenerator(std::uint64_t n, double theta);

    /** @return a zipf-distributed item index in [0, n). */
    std::uint64_t next(Rng &rng) const;

    std::uint64_t items() const { return n; }

  private:
    std::uint64_t n;
    double theta;
    double alpha;
    double zetan;
    double eta;
};

} // namespace strand

#endif // SIM_RANDOM_HH
