file(REMOVE_RECURSE
  "CMakeFiles/sw_sim.dir/event_queue.cc.o"
  "CMakeFiles/sw_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/sw_sim.dir/logging.cc.o"
  "CMakeFiles/sw_sim.dir/logging.cc.o.d"
  "CMakeFiles/sw_sim.dir/pdes.cc.o"
  "CMakeFiles/sw_sim.dir/pdes.cc.o.d"
  "CMakeFiles/sw_sim.dir/random.cc.o"
  "CMakeFiles/sw_sim.dir/random.cc.o.d"
  "CMakeFiles/sw_sim.dir/stats.cc.o"
  "CMakeFiles/sw_sim.dir/stats.cc.o.d"
  "libsw_sim.a"
  "libsw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
