# Empty dependencies file for sw_sim.
# This may be replaced when dependencies are built.
