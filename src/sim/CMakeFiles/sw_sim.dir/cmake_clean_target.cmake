file(REMOVE_RECURSE
  "libsw_sim.a"
)
