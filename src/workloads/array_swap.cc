#include "workloads/array_swap.hh"

#include "sim/random.hh"

namespace strand
{

namespace
{
/** Per-element lock space (lock order: lower index first). */
constexpr std::uint32_t elementLockBase = 3000;
constexpr std::uint64_t numElements = 4096;
} // namespace

void
ArraySwapWorkload::record(TraceRecorder &rec, PersistentHeap &heap,
                          const WorkloadParams &params)
{
    Rng rng(params.seed);
    elements = numElements;
    arrayBase = heap.alloc(0, numElements * lineBytes);

    expectedSum = 0;
    for (std::uint64_t i = 0; i < numElements; ++i) {
        rec.preload(arrayBase + i * lineBytes, i + 1);
        expectedSum += i + 1;
    }

    for (unsigned op = 0; op < params.opsPerThread; ++op) {
        for (CoreId t = 0; t < params.numThreads; ++t) {
            std::uint64_t i = rng.nextBounded(numElements);
            std::uint64_t j = rng.nextBounded(numElements);
            while (j == i)
                j = rng.nextBounded(numElements);
            if (j < i)
                std::swap(i, j); // lock ordering discipline
            auto lockI =
                static_cast<std::uint32_t>(elementLockBase + i);
            auto lockJ =
                static_cast<std::uint32_t>(elementLockBase + j);
            rec.lockAcquire(t, lockI);
            rec.lockAcquire(t, lockJ);
            rec.regionBegin(t);
            std::uint64_t vi = rec.read(t, arrayBase + i * lineBytes);
            std::uint64_t vj = rec.read(t, arrayBase + j * lineBytes);
            rec.compute(t, 15);
            rec.write(t, arrayBase + i * lineBytes, vj);
            rec.write(t, arrayBase + j * lineBytes, vi);
            rec.regionEnd(t);
            rec.lockRelease(t, lockJ);
            rec.lockRelease(t, lockI);
            rec.compute(t, 50);
        }
    }
}

std::string
ArraySwapWorkload::checkInvariants(
    const std::function<std::uint64_t(Addr)> &read) const
{
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < elements; ++i) {
        std::uint64_t v = read(arrayBase + i * lineBytes);
        if (v == 0 || v > elements)
            return "array element out of range";
        sum += v;
    }
    if (sum != expectedSum)
        return "array sum changed: a swap was torn";
    return {};
}

} // namespace strand
