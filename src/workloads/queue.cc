#include "workloads/queue.hh"

#include "sim/random.hh"

namespace strand
{

namespace
{
constexpr std::uint32_t queueLock = 1;
constexpr Addr valueField = 0;
constexpr Addr nextField = 8;
} // namespace

void
QueueWorkload::record(TraceRecorder &rec, PersistentHeap &heap,
                      const WorkloadParams &params)
{
    Rng rng(params.seed);

    // Meta line and sentinel node, preloaded as durable setup state.
    Addr meta = heap.alloc(0, 2 * lineBytes);
    headPtr = meta;
    tailPtr = meta + lineBytes;
    Addr sentinel = heap.alloc(0, lineBytes);
    rec.preload(sentinel + valueField, 0);
    rec.preload(sentinel + nextField, 0);
    rec.preload(headPtr, sentinel);
    rec.preload(tailPtr, sentinel);

    maxNodes = 1 + static_cast<std::uint64_t>(params.numThreads) *
                       params.opsPerThread;

    std::uint64_t nextValue = 1;
    for (unsigned op = 0; op < params.opsPerThread; ++op) {
        for (CoreId t = 0; t < params.numThreads; ++t) {
            bool push = rng.chance(0.5);
            rec.lockAcquire(t, queueLock);
            rec.regionBegin(t);
            if (push) {
                Addr node = heap.alloc(t, lineBytes);
                rec.compute(t, 30); // allocation bookkeeping
                rec.write(t, node + valueField, nextValue++);
                rec.write(t, node + nextField, 0);
                Addr tail = rec.read(t, tailPtr);
                rec.write(t, tail + nextField, node);
                rec.write(t, tailPtr, node);
            } else {
                Addr head = rec.read(t, headPtr);
                Addr first = rec.read(t, head + nextField);
                if (first != 0) {
                    rec.read(t, first + valueField);
                    rec.write(t, headPtr, first);
                    // The dequeued sentinel slot is garbage; real PM
                    // allocators defer reuse, so we simply drop it.
                }
                rec.compute(t, 10);
            }
            rec.regionEnd(t);
            rec.lockRelease(t, queueLock);
            rec.compute(t, 120); // inter-operation application work
        }
    }
}

std::string
QueueWorkload::checkInvariants(
    const std::function<std::uint64_t(Addr)> &read) const
{
    Addr head = read(headPtr);
    Addr tail = read(tailPtr);
    if (head == 0 || tail == 0)
        return "queue pointers are null";

    // Walk from the (sentinel) head; the walk must terminate, reach
    // the tail, and end with a null next pointer. Values must be
    // strictly increasing (FIFO order of a monotonic counter).
    Addr node = head;
    std::uint64_t lastValue = 0;
    bool sawTail = (node == tail);
    for (std::uint64_t steps = 0;; ++steps) {
        if (steps > maxNodes)
            return "queue walk did not terminate (cycle?)";
        Addr next = read(node + nextField);
        if (node == tail)
            sawTail = true;
        if (next == 0)
            break;
        std::uint64_t value = read(next + valueField);
        if (value <= lastValue)
            return "queue values not strictly increasing";
        lastValue = value;
        node = next;
    }
    if (!sawTail)
        return "tail not reachable from head";
    return {};
}

} // namespace strand
