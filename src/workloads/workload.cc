#include "workloads/workload.hh"

#include "workloads/array_swap.hh"
#include "workloads/hashmap.hh"
#include "workloads/nstore.hh"
#include "workloads/queue.hh"
#include "workloads/rbtree.hh"
#include "workloads/tpcc.hh"

namespace strand
{

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Queue:
        return "queue";
      case WorkloadKind::Hashmap:
        return "hashmap";
      case WorkloadKind::ArraySwap:
        return "array-swap";
      case WorkloadKind::RbTree:
        return "rbtree";
      case WorkloadKind::Tpcc:
        return "tpcc";
      case WorkloadKind::NStoreRdHeavy:
        return "nstore-rd";
      case WorkloadKind::NStoreBalanced:
        return "nstore-bal";
      case WorkloadKind::NStoreWrHeavy:
        return "nstore-wr";
    }
    return "?";
}

std::unique_ptr<Workload>
makeWorkload(WorkloadKind kind)
{
    switch (kind) {
      case WorkloadKind::Queue:
        return std::make_unique<QueueWorkload>();
      case WorkloadKind::Hashmap:
        return std::make_unique<HashmapWorkload>();
      case WorkloadKind::ArraySwap:
        return std::make_unique<ArraySwapWorkload>();
      case WorkloadKind::RbTree:
        return std::make_unique<RbTreeWorkload>();
      case WorkloadKind::Tpcc:
        return std::make_unique<TpccWorkload>();
      case WorkloadKind::NStoreRdHeavy:
        return std::make_unique<NStoreWorkload>(0.9, "nstore-rd");
      case WorkloadKind::NStoreBalanced:
        return std::make_unique<NStoreWorkload>(0.5, "nstore-bal");
      case WorkloadKind::NStoreWrHeavy:
        return std::make_unique<NStoreWorkload>(0.1, "nstore-wr");
    }
    panic("unknown workload kind");
}

} // namespace strand
