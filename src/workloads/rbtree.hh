/**
 * @file
 * Persistent red-black tree microbenchmark (Table II, from [26,
 * 18]): full CLRS insert/delete with rebalancing, every node access
 * through the recorder so the trace reflects real pointer chasing
 * and every mutation is undo-logged.
 */

#ifndef WORKLOADS_RBTREE_HH
#define WORKLOADS_RBTREE_HH

#include "workloads/workload.hh"

namespace strand
{

/** Insert/delete on a persistent red-black tree. */
class RbTreeWorkload : public Workload
{
  public:
    const char *name() const override { return "rbtree"; }

    void record(TraceRecorder &rec, PersistentHeap &heap,
                const WorkloadParams &params) override;

    std::string checkInvariants(
        const std::function<std::uint64_t(Addr)> &read) const override;

  private:
    Addr rootPtr = 0;
    std::uint64_t keySpace = 0;
    std::uint64_t maxNodes = 0;
};

} // namespace strand

#endif // WORKLOADS_RBTREE_HH
