/**
 * @file
 * Persistent queue microbenchmark (Table II, from [16, 18]).
 *
 * A singly linked queue with a sentinel head, protected by one
 * global lock — all threads contend on it, which is why the paper
 * observes the lowest write intensity but still large speedups: the
 * CLWBs sit on the critical path of every push/pop.
 */

#ifndef WORKLOADS_QUEUE_HH
#define WORKLOADS_QUEUE_HH

#include "workloads/workload.hh"

namespace strand
{

/** Insert/delete on a persistent linked queue. */
class QueueWorkload : public Workload
{
  public:
    const char *name() const override { return "queue"; }

    void record(TraceRecorder &rec, PersistentHeap &heap,
                const WorkloadParams &params) override;

    std::string checkInvariants(
        const std::function<std::uint64_t(Addr)> &read) const override;

  private:
    /** Meta line: head pointer word and tail pointer word. */
    Addr headPtr = 0;
    Addr tailPtr = 0;
    std::uint64_t maxNodes = 0;
};

} // namespace strand

#endif // WORKLOADS_QUEUE_HH
