#include "workloads/rbtree.hh"

#include "sim/random.hh"

namespace strand
{

namespace
{

constexpr std::uint32_t treeLock = 3;
constexpr std::uint64_t treeKeySpace = 8192;

constexpr Addr fKey = 0;
constexpr Addr fColor = 8; // 0 = black, 1 = red
constexpr Addr fLeft = 16;
constexpr Addr fRight = 24;
constexpr Addr fParent = 32;
constexpr Addr fValue = 40;

constexpr std::uint64_t black = 0;
constexpr std::uint64_t red = 1;

/**
 * Field accessors routed through the recorder: every read is a Load
 * event, every write a LoggedStore (inside the region). The nil node
 * is address 0 and is always black.
 */
struct Rb
{
    TraceRecorder &rec;
    CoreId t;
    Addr rootPtr;

    Addr root() { return rec.read(t, rootPtr); }
    void setRoot(Addr n) { rec.write(t, rootPtr, n); }

    std::uint64_t key(Addr n) { return rec.read(t, n + fKey); }
    Addr left(Addr n) { return rec.read(t, n + fLeft); }
    Addr right(Addr n) { return rec.read(t, n + fRight); }
    Addr parent(Addr n) { return rec.read(t, n + fParent); }

    bool
    isRed(Addr n)
    {
        return n != 0 && rec.read(t, n + fColor) == red;
    }

    void setColor(Addr n, std::uint64_t c)
    {
        if (n != 0)
            rec.write(t, n + fColor, c);
    }

    void setLeft(Addr n, Addr v) { rec.write(t, n + fLeft, v); }
    void setRight(Addr n, Addr v) { rec.write(t, n + fRight, v); }
    void
    setParent(Addr n, Addr v)
    {
        if (n != 0)
            rec.write(t, n + fParent, v);
    }

    void
    rotateLeft(Addr x)
    {
        Addr y = right(x);
        Addr yl = left(y);
        setRight(x, yl);
        setParent(yl, x);
        Addr xp = parent(x);
        setParent(y, xp);
        if (xp == 0)
            setRoot(y);
        else if (left(xp) == x)
            setLeft(xp, y);
        else
            setRight(xp, y);
        setLeft(y, x);
        setParent(x, y);
    }

    void
    rotateRight(Addr x)
    {
        Addr y = left(x);
        Addr yr = right(y);
        setLeft(x, yr);
        setParent(yr, x);
        Addr xp = parent(x);
        setParent(y, xp);
        if (xp == 0)
            setRoot(y);
        else if (right(xp) == x)
            setRight(xp, y);
        else
            setLeft(xp, y);
        setRight(y, x);
        setParent(x, y);
    }

    Addr
    find(std::uint64_t k)
    {
        Addr n = root();
        while (n != 0) {
            std::uint64_t nk = key(n);
            if (nk == k)
                return n;
            n = k < nk ? left(n) : right(n);
        }
        return 0;
    }

    Addr
    minimum(Addr n)
    {
        Addr l = left(n);
        while (l != 0) {
            n = l;
            l = left(n);
        }
        return n;
    }

    void
    insertFixup(Addr z)
    {
        while (isRed(parent(z))) {
            Addr zp = parent(z);
            Addr zpp = parent(zp);
            if (zp == left(zpp)) {
                Addr uncle = right(zpp);
                if (isRed(uncle)) {
                    setColor(zp, black);
                    setColor(uncle, black);
                    setColor(zpp, red);
                    z = zpp;
                } else {
                    if (z == right(zp)) {
                        z = zp;
                        rotateLeft(z);
                        zp = parent(z);
                        zpp = parent(zp);
                    }
                    setColor(zp, black);
                    setColor(zpp, red);
                    rotateRight(zpp);
                }
            } else {
                Addr uncle = left(zpp);
                if (isRed(uncle)) {
                    setColor(zp, black);
                    setColor(uncle, black);
                    setColor(zpp, red);
                    z = zpp;
                } else {
                    if (z == left(zp)) {
                        z = zp;
                        rotateRight(z);
                        zp = parent(z);
                        zpp = parent(zp);
                    }
                    setColor(zp, black);
                    setColor(zpp, red);
                    rotateLeft(zpp);
                }
            }
        }
        setColor(root(), black);
    }

    /** Insert a fresh node. @return false if the key exists. */
    bool
    insert(Addr node, std::uint64_t k)
    {
        Addr parentNode = 0;
        Addr cur = root();
        while (cur != 0) {
            parentNode = cur;
            std::uint64_t ck = key(cur);
            if (ck == k)
                return false;
            cur = k < ck ? left(cur) : right(cur);
        }
        rec.write(t, node + fKey, k);
        rec.write(t, node + fValue, k * 3);
        rec.write(t, node + fColor, red);
        rec.write(t, node + fLeft, 0);
        rec.write(t, node + fRight, 0);
        rec.write(t, node + fParent, parentNode);
        if (parentNode == 0)
            setRoot(node);
        else if (k < key(parentNode))
            setLeft(parentNode, node);
        else
            setRight(parentNode, node);
        insertFixup(node);
        return true;
    }

    /** Replace subtree @p u with @p v (CLRS transplant). */
    void
    transplant(Addr u, Addr v)
    {
        Addr up = parent(u);
        if (up == 0)
            setRoot(v);
        else if (u == left(up))
            setLeft(up, v);
        else
            setRight(up, v);
        setParent(v, up);
    }

    void
    deleteFixup(Addr x, Addr xParent)
    {
        while (x != root() && !isRed(x)) {
            if (xParent == 0)
                break;
            if (x == left(xParent)) {
                Addr w = right(xParent);
                if (isRed(w)) {
                    setColor(w, black);
                    setColor(xParent, red);
                    rotateLeft(xParent);
                    w = right(xParent);
                }
                if (!isRed(left(w)) && !isRed(right(w))) {
                    setColor(w, red);
                    x = xParent;
                    xParent = parent(x);
                } else {
                    if (!isRed(right(w))) {
                        setColor(left(w), black);
                        setColor(w, red);
                        rotateRight(w);
                        w = right(xParent);
                    }
                    setColor(w, isRed(xParent) ? red : black);
                    setColor(xParent, black);
                    setColor(right(w), black);
                    rotateLeft(xParent);
                    x = root();
                    xParent = 0;
                }
            } else {
                Addr w = left(xParent);
                if (isRed(w)) {
                    setColor(w, black);
                    setColor(xParent, red);
                    rotateRight(xParent);
                    w = left(xParent);
                }
                if (!isRed(right(w)) && !isRed(left(w))) {
                    setColor(w, red);
                    x = xParent;
                    xParent = parent(x);
                } else {
                    if (!isRed(left(w))) {
                        setColor(right(w), black);
                        setColor(w, red);
                        rotateLeft(w);
                        w = left(xParent);
                    }
                    setColor(w, isRed(xParent) ? red : black);
                    setColor(xParent, black);
                    setColor(left(w), black);
                    rotateRight(xParent);
                    x = root();
                    xParent = 0;
                }
            }
        }
        setColor(x, black);
    }

    /** Remove node @p z from the tree (CLRS delete). */
    void
    remove(Addr z)
    {
        Addr y = z;
        bool yWasBlack = !isRed(y);
        Addr x;
        Addr xParent;
        if (left(z) == 0) {
            x = right(z);
            xParent = parent(z);
            transplant(z, x);
        } else if (right(z) == 0) {
            x = left(z);
            xParent = parent(z);
            transplant(z, x);
        } else {
            y = minimum(right(z));
            yWasBlack = !isRed(y);
            x = right(y);
            if (parent(y) == z) {
                xParent = y;
                setParent(x, y);
            } else {
                xParent = parent(y);
                transplant(y, x);
                setRight(y, right(z));
                setParent(right(y), y);
            }
            transplant(z, y);
            setLeft(y, left(z));
            setParent(left(y), y);
            setColor(y, isRed(z) ? red : black);
        }
        if (yWasBlack)
            deleteFixup(x, xParent);
    }
};

} // namespace

void
RbTreeWorkload::record(TraceRecorder &rec, PersistentHeap &heap,
                       const WorkloadParams &params)
{
    Rng rng(params.seed);
    keySpace = treeKeySpace;
    rootPtr = heap.alloc(0, lineBytes);
    rec.preload(rootPtr, 0);
    maxNodes = treeKeySpace + 16;

    // Warm the tree with a quarter of the key space. The warm tree
    // is built functionally in a scratch recorder and preloaded as
    // durable setup state, so only the measured mix is timed.
    {
        TraceRecorder scratch(1);
        scratch.preload(rootPtr, 0);
        Rb tree{scratch, 0, rootPtr};
        for (std::uint64_t k = 2; k < treeKeySpace; k += 4) {
            Addr node = heap.alloc(0, lineBytes);
            tree.insert(node, k);
        }
        for (auto [addr, value] : scratch.functionalMemory())
            rec.preload(addr, value);
    }

    for (unsigned op = 0; op < params.opsPerThread; ++op) {
        for (CoreId t = 0; t < params.numThreads; ++t) {
            std::uint64_t k = 1 + rng.nextBounded(treeKeySpace);
            bool doInsert = rng.chance(0.5);
            rec.lockAcquire(t, treeLock);
            rec.regionBegin(t);
            Rb tree{rec, t, rootPtr};
            rec.compute(t, 20);
            if (doInsert) {
                Addr node = heap.alloc(t, lineBytes);
                if (!tree.insert(node, k))
                    heap.free(t, node, lineBytes);
            } else {
                Addr victim = tree.find(k);
                if (victim != 0)
                    tree.remove(victim);
            }
            rec.regionEnd(t);
            rec.lockRelease(t, treeLock);
            rec.compute(t, 40);
        }
    }
}

std::string
RbTreeWorkload::checkInvariants(
    const std::function<std::uint64_t(Addr)> &read) const
{
    Addr root = read(rootPtr);
    if (root == 0)
        return {}; // empty tree is consistent

    if (read(root + fColor) == red)
        return "root is red";
    if (read(root + fParent) != 0)
        return "root has a parent";

    // Iterative DFS checking BST order, red-red, black height, and
    // parent consistency.
    struct Frame
    {
        Addr node;
        std::uint64_t lo, hi;
    };
    std::vector<Frame> stack{{root, 0, ~std::uint64_t(0)}};
    std::uint64_t visited = 0;
    std::int64_t blackHeight = -1;

    // Compute black height along the leftmost path first.
    {
        std::int64_t h = 0;
        Addr n = root;
        while (n != 0) {
            if (read(n + fColor) == black)
                ++h;
            n = read(n + fLeft);
        }
        blackHeight = h;
    }

    // Full traversal with per-leaf black-height check.
    struct Frame2
    {
        Addr node;
        std::uint64_t lo, hi;
        std::int64_t blacks;
    };
    std::vector<Frame2> work{{root, 0, ~std::uint64_t(0), 0}};
    while (!work.empty()) {
        Frame2 f = work.back();
        work.pop_back();
        if (++visited > maxNodes)
            return "tree traversal did not terminate";

        std::uint64_t k = read(f.node + fKey);
        if (k <= f.lo || k >= f.hi)
            return "BST order violated";
        bool nodeRed = read(f.node + fColor) == red;
        Addr l = read(f.node + fLeft);
        Addr r = read(f.node + fRight);
        std::int64_t blacks = f.blacks + (nodeRed ? 0 : 1);

        for (Addr child : {l, r}) {
            if (child == 0)
                continue;
            if (read(child + fParent) != f.node)
                return "parent pointer inconsistent";
            if (nodeRed && read(child + fColor) == red)
                return "red-red violation";
        }
        // Every nil path must carry the same number of black nodes.
        if ((l == 0 || r == 0) && blacks != blackHeight)
            return "black height differs between nil paths";
        if (l != 0)
            work.push_back({l, f.lo, k, blacks});
        if (r != 0)
            work.push_back({r, k, f.hi, blacks});
    }
    return {};
}

} // namespace strand
