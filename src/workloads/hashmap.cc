#include "workloads/hashmap.hh"

#include "sim/random.hh"

namespace strand
{

namespace
{
constexpr std::uint32_t bucketLockBase = 1000;
constexpr std::uint64_t buckets = 1024;
constexpr std::uint64_t keys = 4096;
constexpr Addr keyField = 0;
constexpr Addr valueField = 8;
constexpr Addr nextField = 16;

std::uint64_t
hashKey(std::uint64_t key)
{
    // Fibonacci hashing; cheap and well-spread.
    return (key * 11400714819323198485ULL) >> 54; // 1024 buckets
}
} // namespace

Addr
HashmapWorkload::bucketAddr(std::uint64_t b) const
{
    return bucketsBase + b * lineBytes;
}

void
HashmapWorkload::record(TraceRecorder &rec, PersistentHeap &heap,
                        const WorkloadParams &params)
{
    Rng rng(params.seed);
    numBuckets = buckets;
    keySpace = keys;
    bucketsBase = heap.alloc(0, buckets * lineBytes);
    for (std::uint64_t b = 0; b < buckets; ++b)
        rec.preload(bucketAddr(b), 0);

    // Preload half the key space.
    for (std::uint64_t key = 1; key <= keys; key += 2) {
        std::uint64_t b = hashKey(key) % buckets;
        Addr node = heap.alloc(0, lineBytes);
        rec.preload(node + keyField, key);
        rec.preload(node + valueField, key * 10);
        rec.preload(node + nextField, rec.peek(bucketAddr(b)));
        rec.preload(bucketAddr(b), node);
    }
    maxNodes = keys + 16;

    for (unsigned op = 0; op < params.opsPerThread; ++op) {
        for (CoreId t = 0; t < params.numThreads; ++t) {
            std::uint64_t key = 1 + rng.nextBounded(keys);
            std::uint64_t b = hashKey(key) % buckets;
            std::uint32_t lock =
                bucketLockBase + static_cast<std::uint32_t>(b);
            rec.compute(t, 15); // hashing
            bool update = rng.chance(0.5);

            rec.lockAcquire(t, lock);
            if (!update) {
                // Lookup: chain walk, no region needed.
                Addr node = rec.read(t, bucketAddr(b));
                while (node != 0) {
                    if (rec.read(t, node + keyField) == key) {
                        rec.read(t, node + valueField);
                        break;
                    }
                    node = rec.read(t, node + nextField);
                }
            } else {
                rec.regionBegin(t);
                Addr node = rec.read(t, bucketAddr(b));
                Addr found = 0;
                while (node != 0) {
                    if (rec.read(t, node + keyField) == key) {
                        found = node;
                        break;
                    }
                    node = rec.read(t, node + nextField);
                }
                if (found != 0) {
                    rec.write(t, found + valueField,
                              rec.peek(found + valueField) + 1);
                } else {
                    Addr fresh = heap.alloc(t, lineBytes);
                    rec.compute(t, 30);
                    rec.write(t, fresh + keyField, key);
                    rec.write(t, fresh + valueField, key * 10);
                    rec.write(t, fresh + nextField,
                              rec.peek(bucketAddr(b)));
                    rec.write(t, bucketAddr(b), fresh);
                }
                rec.regionEnd(t);
            }
            rec.lockRelease(t, lock);
            rec.compute(t, 60);
        }
    }
}

std::string
HashmapWorkload::checkInvariants(
    const std::function<std::uint64_t(Addr)> &read) const
{
    for (std::uint64_t b = 0; b < numBuckets; ++b) {
        Addr node = read(bucketAddr(b));
        std::uint64_t steps = 0;
        while (node != 0) {
            if (++steps > maxNodes)
                return "hashmap chain does not terminate";
            std::uint64_t key = read(node + keyField);
            if (key == 0 || key > keySpace)
                return "hashmap key out of range";
            if (hashKey(key) % numBuckets != b)
                return "hashmap node in wrong bucket";
            if (read(node + valueField) == 0)
                return "hashmap value missing";
            node = read(node + nextField);
        }
    }
    return {};
}

} // namespace strand
