#include "workloads/tpcc.hh"

#include "sim/random.hh"

namespace strand
{

namespace
{

constexpr std::uint32_t districtLockBase = 100;
constexpr std::uint32_t stockLockBase = 200;
constexpr unsigned numDistricts = 10;
constexpr unsigned numItems = 4096;
constexpr unsigned stockPartitions = 64;

// District row fields.
constexpr Addr dNextOid = 0;
constexpr Addr dYtd = 8;

// Item row fields.
constexpr Addr iPrice = 0;

// Stock row fields.
constexpr Addr sQuantity = 0;
constexpr Addr sYtd = 8;
constexpr Addr sOrderCount = 16;

// Order record fields (one line) followed by up to 15 order lines.
constexpr Addr oId = 0;
constexpr Addr oCustomer = 8;
constexpr Addr oLineCount = 16;
constexpr Addr olItem = 0;
constexpr Addr olQuantity = 8;
constexpr Addr olAmount = 16;

} // namespace

void
TpccWorkload::record(TraceRecorder &rec, PersistentHeap &heap,
                     const WorkloadParams &params)
{
    Rng rng(params.seed);

    districtBase = heap.alloc(0, numDistricts * lineBytes);
    itemBase = heap.alloc(0, numItems * lineBytes);
    stockBase = heap.alloc(0, numItems * lineBytes);
    ordersPerDistrict =
        1 + static_cast<std::uint64_t>(params.numThreads) *
                params.opsPerThread;
    orderDirBase =
        heap.alloc(0, numDistricts * ordersPerDistrict * wordBytes);

    for (unsigned d = 0; d < numDistricts; ++d) {
        rec.preload(districtBase + d * lineBytes + dNextOid, 1);
        rec.preload(districtBase + d * lineBytes + dYtd, 0);
    }
    for (unsigned i = 0; i < numItems; ++i) {
        rec.preload(itemBase + i * lineBytes + iPrice, 100 + i % 900);
        rec.preload(stockBase + i * lineBytes + sQuantity, 10000);
        rec.preload(stockBase + i * lineBytes + sYtd, 0);
        rec.preload(stockBase + i * lineBytes + sOrderCount, 0);
    }

    for (unsigned op = 0; op < params.opsPerThread; ++op) {
        for (CoreId t = 0; t < params.numThreads; ++t) {
            unsigned d = rng.nextBounded(numDistricts);
            unsigned lines = 5 + rng.nextBounded(11); // 5..15
            std::uint32_t dLock =
                districtLockBase + static_cast<std::uint32_t>(d);

            // Choose distinct stock partitions up front and lock in
            // ascending order (the classic deadlock-free discipline).
            std::vector<unsigned> items;
            std::vector<std::uint32_t> partitions;
            for (unsigned l = 0; l < lines; ++l)
                items.push_back(rng.nextBounded(numItems));
            for (unsigned item : items) {
                std::uint32_t p = stockLockBase + item % stockPartitions;
                bool dup = false;
                for (std::uint32_t existing : partitions)
                    dup |= existing == p;
                if (!dup)
                    partitions.push_back(p);
            }
            std::sort(partitions.begin(), partitions.end());

            // The paper attributes TPCC's low speedup to the high
            // lock-acquisition overhead per failure-atomic region:
            // every acquired lock pays lock-manager work inside the
            // transaction.
            rec.lockAcquire(t, dLock);
            rec.compute(t, 180);
            for (std::uint32_t p : partitions) {
                rec.lockAcquire(t, p);
                rec.compute(t, 180);
            }

            rec.regionBegin(t);
            rec.compute(t, 220); // txn setup, customer/warehouse reads

            // District: allocate the order id.
            Addr dRow = districtBase + d * lineBytes;
            std::uint64_t orderId = rec.read(t, dRow + dNextOid);
            rec.write(t, dRow + dNextOid, orderId + 1);

            // Order record plus order lines.
            Addr order =
                heap.alloc(t, (1 + lines) * lineBytes);
            rec.write(t, order + oId, orderId);
            rec.write(t, order + oCustomer, 1 + rng.nextBounded(3000));
            rec.write(t, order + oLineCount, lines);

            std::uint64_t total = 0;
            for (unsigned l = 0; l < lines; ++l) {
                unsigned item = items[l];
                std::uint64_t price =
                    rec.read(t, itemBase + item * lineBytes + iPrice);
                Addr sRow = stockBase + item * lineBytes;
                std::uint64_t qty = rec.read(t, sRow + sQuantity);
                std::uint64_t take = 1 + rng.nextBounded(10);
                rec.compute(t, 60);
                rec.write(t, sRow + sQuantity,
                          qty > take ? qty - take : qty + 91 - take);
                rec.write(t, sRow + sYtd,
                          rec.peek(sRow + sYtd) + take);
                rec.write(t, sRow + sOrderCount,
                          rec.peek(sRow + sOrderCount) + 1);

                Addr ol = order + (1 + l) * lineBytes;
                rec.write(t, ol + olItem, item);
                rec.write(t, ol + olQuantity, take);
                rec.write(t, ol + olAmount, price * take);
                total += price * take;
            }

            // District year-to-date revenue and the order directory.
            rec.write(t, dRow + dYtd, rec.peek(dRow + dYtd) + total);
            rec.write(t,
                      orderDirBase +
                          (d * ordersPerDistrict + orderId) * wordBytes,
                      order);

            rec.regionEnd(t);
            for (auto it = partitions.rbegin(); it != partitions.rend();
                 ++it)
                rec.lockRelease(t, *it);
            rec.lockRelease(t, dLock);
            rec.compute(t, 250);
        }
    }
}

std::string
TpccWorkload::checkInvariants(
    const std::function<std::uint64_t(Addr)> &read) const
{
    for (unsigned d = 0; d < numDistricts; ++d) {
        Addr dRow = districtBase + d * lineBytes;
        std::uint64_t nextOid = read(dRow + dNextOid);
        if (nextOid == 0)
            return "district next order id lost";
        // Every allocated order id below next_o_id must have a
        // complete, consistent order record.
        for (std::uint64_t o = 1; o < nextOid; ++o) {
            Addr order = read(orderDirBase +
                              (d * ordersPerDistrict + o) * wordBytes);
            if (order == 0)
                return "order id allocated but order record missing";
            if (read(order + oId) != o)
                return "order record id mismatch";
            std::uint64_t lines = read(order + oLineCount);
            if (lines < 5 || lines > 15)
                return "order line count out of range";
            std::uint64_t sum = 0;
            for (std::uint64_t l = 0; l < lines; ++l) {
                Addr ol = order + (1 + l) * lineBytes;
                std::uint64_t qty = read(ol + olQuantity);
                if (qty == 0 || qty > 10)
                    return "order line quantity out of range";
                sum += read(ol + olAmount);
            }
            if (sum == 0)
                return "order total is zero";
        }
    }
    return {};
}

} // namespace strand
