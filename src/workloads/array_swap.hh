/**
 * @file
 * Array-swap microbenchmark (Table II, from [26, 17]): swap two
 * random 64-byte array elements inside a failure-atomic region under
 * a global lock. The multiset of element values — and hence their
 * sum — is invariant, which makes crash states easy to audit.
 */

#ifndef WORKLOADS_ARRAY_SWAP_HH
#define WORKLOADS_ARRAY_SWAP_HH

#include "workloads/workload.hh"

namespace strand
{

/** Swap of array elements. */
class ArraySwapWorkload : public Workload
{
  public:
    const char *name() const override { return "array-swap"; }

    void record(TraceRecorder &rec, PersistentHeap &heap,
                const WorkloadParams &params) override;

    std::string checkInvariants(
        const std::function<std::uint64_t(Addr)> &read) const override;

  private:
    Addr arrayBase = 0;
    std::uint64_t elements = 0;
    std::uint64_t expectedSum = 0;
};

} // namespace strand

#endif // WORKLOADS_ARRAY_SWAP_HH
