file(REMOVE_RECURSE
  "libsw_workloads.a"
)
