file(REMOVE_RECURSE
  "CMakeFiles/sw_workloads.dir/array_swap.cc.o"
  "CMakeFiles/sw_workloads.dir/array_swap.cc.o.d"
  "CMakeFiles/sw_workloads.dir/hashmap.cc.o"
  "CMakeFiles/sw_workloads.dir/hashmap.cc.o.d"
  "CMakeFiles/sw_workloads.dir/nstore.cc.o"
  "CMakeFiles/sw_workloads.dir/nstore.cc.o.d"
  "CMakeFiles/sw_workloads.dir/queue.cc.o"
  "CMakeFiles/sw_workloads.dir/queue.cc.o.d"
  "CMakeFiles/sw_workloads.dir/rbtree.cc.o"
  "CMakeFiles/sw_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/sw_workloads.dir/tpcc.cc.o"
  "CMakeFiles/sw_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/sw_workloads.dir/workload.cc.o"
  "CMakeFiles/sw_workloads.dir/workload.cc.o.d"
  "libsw_workloads.a"
  "libsw_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sw_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
