# Empty dependencies file for sw_workloads.
# This may be replaced when dependencies are built.
