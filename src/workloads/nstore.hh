/**
 * @file
 * N-Store key-value workload (Table II, from [60]): a persistent
 * hash-indexed KV store driven by a YCSB-style zipfian load at three
 * read/write mixes (90/10, 50/50, 10/90). Values span several words,
 * so updates produce multiple undo-logged stores per operation —
 * this is the paper's most write-intensive benchmark at the 10/90
 * mix.
 */

#ifndef WORKLOADS_NSTORE_HH
#define WORKLOADS_NSTORE_HH

#include "workloads/workload.hh"

namespace strand
{

/** N-Store with a configurable read fraction. */
class NStoreWorkload : public Workload
{
  public:
    /**
     * @param readFraction Fraction of operations that are reads.
     * @param mixName Static display name for the mix.
     */
    NStoreWorkload(double readFraction, const char *mixName)
        : readFraction(readFraction), mixName(mixName)
    {
    }

    const char *name() const override { return mixName; }

    void record(TraceRecorder &rec, PersistentHeap &heap,
                const WorkloadParams &params) override;

    std::string checkInvariants(
        const std::function<std::uint64_t(Addr)> &read) const override;

  private:
    Addr bucketAddr(std::uint64_t b) const;

    double readFraction;
    const char *mixName;
    Addr bucketsBase = 0;
    std::uint64_t numBuckets = 0;
    std::uint64_t keySpace = 0;
    std::uint64_t maxNodes = 0;
};

} // namespace strand

#endif // WORKLOADS_NSTORE_HH
