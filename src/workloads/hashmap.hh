/**
 * @file
 * Persistent hashmap microbenchmark (Table II, from [26, 17]):
 * chained buckets with per-bucket locks; reads and updates in a
 * configurable mix.
 */

#ifndef WORKLOADS_HASHMAP_HH
#define WORKLOADS_HASHMAP_HH

#include "workloads/workload.hh"

namespace strand
{

/** Read/update on a persistent chained hashmap. */
class HashmapWorkload : public Workload
{
  public:
    const char *name() const override { return "hashmap"; }

    void record(TraceRecorder &rec, PersistentHeap &heap,
                const WorkloadParams &params) override;

    std::string checkInvariants(
        const std::function<std::uint64_t(Addr)> &read) const override;

  private:
    Addr bucketAddr(std::uint64_t b) const;

    Addr bucketsBase = 0;
    std::uint64_t numBuckets = 0;
    std::uint64_t keySpace = 0;
    std::uint64_t maxNodes = 0;
};

} // namespace strand

#endif // WORKLOADS_HASHMAP_HH
