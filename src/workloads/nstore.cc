#include "workloads/nstore.hh"

#include "sim/random.hh"

namespace strand
{

namespace
{

constexpr std::uint32_t bucketLockBase = 2000;
constexpr std::uint64_t buckets = 4096;
constexpr std::uint64_t keys = 16384;
/** Value payload: 6 words (a 64-byte tuple with key + next). */
constexpr unsigned valueWords = 6;

constexpr Addr keyField = 0;
constexpr Addr nextField = 8;
constexpr Addr valueField = 16; // 6 words: 16..63

std::uint64_t
hashKey(std::uint64_t key)
{
    return (key * 11400714819323198485ULL) >> 52; // 4096 buckets
}

} // namespace

Addr
NStoreWorkload::bucketAddr(std::uint64_t b) const
{
    return bucketsBase + b * lineBytes;
}

void
NStoreWorkload::record(TraceRecorder &rec, PersistentHeap &heap,
                       const WorkloadParams &params)
{
    Rng rng(params.seed);
    ZipfianGenerator zipf(keys, 0.99);
    numBuckets = buckets;
    keySpace = keys;
    maxNodes = keys + 16;

    bucketsBase = heap.alloc(0, buckets * lineBytes);
    for (std::uint64_t b = 0; b < buckets; ++b)
        rec.preload(bucketAddr(b), 0);

    // Preload the whole key space (the YCSB load phase).
    for (std::uint64_t key = 1; key <= keys; ++key) {
        std::uint64_t b = hashKey(key) % buckets;
        Addr tuple = heap.alloc(0, lineBytes);
        rec.preload(tuple + keyField, key);
        rec.preload(tuple + nextField, rec.peek(bucketAddr(b)));
        for (unsigned w = 0; w < valueWords; ++w)
            rec.preload(tuple + valueField + w * wordBytes, key + w);
        rec.preload(bucketAddr(b), tuple);
    }

    for (unsigned op = 0; op < params.opsPerThread; ++op) {
        for (CoreId t = 0; t < params.numThreads; ++t) {
            std::uint64_t key = 1 + zipf.next(rng);
            std::uint64_t b = hashKey(key) % buckets;
            std::uint32_t lock =
                bucketLockBase + static_cast<std::uint32_t>(b);
            rec.compute(t, 12); // YCSB request handling + hash
            bool isRead = rng.chance(readFraction);

            rec.lockAcquire(t, lock);
            // Index probe (both reads and updates traverse it).
            Addr tuple = rec.read(t, bucketAddr(b));
            while (tuple != 0 &&
                   rec.read(t, tuple + keyField) != key) {
                tuple = rec.read(t, tuple + nextField);
            }

            if (isRead) {
                if (tuple != 0) {
                    for (unsigned w = 0; w < valueWords; ++w)
                        rec.read(t, tuple + valueField + w * wordBytes);
                }
            } else {
                rec.regionBegin(t);
                if (tuple != 0) {
                    // Update the whole tuple payload in place.
                    for (unsigned w = 0; w < valueWords; ++w) {
                        Addr fieldAddr =
                            tuple + valueField + w * wordBytes;
                        rec.write(t, fieldAddr,
                                  rec.peek(fieldAddr) + 1);
                    }
                } else {
                    Addr fresh = heap.alloc(t, lineBytes);
                    rec.compute(t, 30);
                    rec.write(t, fresh + keyField, key);
                    for (unsigned w = 0; w < valueWords; ++w)
                        rec.write(t,
                                  fresh + valueField + w * wordBytes,
                                  key + w);
                    rec.write(t, fresh + nextField,
                              rec.peek(bucketAddr(b)));
                    rec.write(t, bucketAddr(b), fresh);
                }
                rec.regionEnd(t);
            }
            rec.lockRelease(t, lock);
            rec.compute(t, 8);
        }
    }
}

std::string
NStoreWorkload::checkInvariants(
    const std::function<std::uint64_t(Addr)> &read) const
{
    for (std::uint64_t b = 0; b < numBuckets; ++b) {
        Addr tuple = read(bucketAddr(b));
        std::uint64_t steps = 0;
        while (tuple != 0) {
            if (++steps > maxNodes)
                return "nstore chain does not terminate";
            std::uint64_t key = read(tuple + keyField);
            if (key == 0 || key > keySpace)
                return "nstore key out of range";
            if (hashKey(key) % numBuckets != b)
                return "nstore tuple in wrong bucket";
            // Tuple payload words move in lock step (all updated
            // atomically): w-th word minus w must be constant.
            std::uint64_t base = read(tuple + valueField) -
                                 0; // first word
            for (unsigned w = 1; w < valueWords; ++w) {
                std::uint64_t v =
                    read(tuple + valueField + w * wordBytes);
                if (v - w != base)
                    return "nstore tuple payload torn";
            }
            tuple = read(tuple + nextField);
        }
    }
    return {};
}

} // namespace strand
