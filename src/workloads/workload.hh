/**
 * @file
 * Workload interface and registry for the benchmarks of Table II.
 *
 * A workload executes functionally against a TraceRecorder (so the
 * data structures really work and undo-log old values are exact),
 * producing a region trace that is lowered per hardware design and
 * language-level persistency model and replayed on the timing model.
 * One recorded trace is reused across every design — the same
 * apples-to-apples methodology the paper uses.
 */

#ifndef WORKLOADS_WORKLOAD_HH
#define WORKLOADS_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/heap.hh"
#include "runtime/recorder.hh"

namespace strand
{

/** Workload sizing knobs. */
struct WorkloadParams
{
    unsigned numThreads = 8;
    /** Operations performed per thread. */
    unsigned opsPerThread = 6250; // 50K total on 8 threads
    std::uint64_t seed = 1;
};

/** The benchmarks of Table II. */
enum class WorkloadKind
{
    Queue,
    Hashmap,
    ArraySwap,
    RbTree,
    Tpcc,
    NStoreRdHeavy,
    NStoreBalanced,
    NStoreWrHeavy,
};

/** All workloads in the paper's presentation order. */
inline constexpr WorkloadKind allWorkloads[] = {
    WorkloadKind::Queue,         WorkloadKind::Hashmap,
    WorkloadKind::ArraySwap,     WorkloadKind::RbTree,
    WorkloadKind::Tpcc,          WorkloadKind::NStoreRdHeavy,
    WorkloadKind::NStoreBalanced, WorkloadKind::NStoreWrHeavy,
};

const char *workloadName(WorkloadKind kind);

/**
 * Base class: a workload records its execution, then can validate
 * structural invariants against a (persisted) memory view.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const char *name() const = 0;

    /**
     * Execute functionally and record the trace. Threads' operations
     * are interleaved round-robin; each lock-protected operation
     * executes atomically, which yields a valid sequentially
     * consistent interleaving and a deterministic ticket order.
     */
    virtual void record(TraceRecorder &rec, PersistentHeap &heap,
                        const WorkloadParams &params) = 0;

    /**
     * Check structural invariants (e.g. list integrity, tree
     * balance) against a value reader. Used both on the functional
     * state and on the recovered persisted state.
     * @param read Function returning the 64-bit word at an address.
     * @return empty string if consistent, else a description.
     */
    virtual std::string
    checkInvariants(const std::function<std::uint64_t(Addr)> &read) const
    {
        (void)read;
        return {};
    }
};

/** Instantiate a workload implementation. */
std::unique_ptr<Workload> makeWorkload(WorkloadKind kind);

} // namespace strand

#endif // WORKLOADS_WORKLOAD_HH
