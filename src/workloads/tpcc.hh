/**
 * @file
 * TPC-C New-Order benchmark (Table II, from [61, 17]): the order
 * processing transaction against persistent district, item, stock,
 * order, and order-line tables. Each transaction takes a district
 * lock plus one lock per touched stock partition — the
 * multiple-locks-per-region behaviour the paper calls out as the
 * reason TPCC sees the smallest speedup.
 */

#ifndef WORKLOADS_TPCC_HH
#define WORKLOADS_TPCC_HH

#include "workloads/workload.hh"

namespace strand
{

/** New-Order transactions from TPC-C. */
class TpccWorkload : public Workload
{
  public:
    const char *name() const override { return "tpcc"; }

    void record(TraceRecorder &rec, PersistentHeap &heap,
                const WorkloadParams &params) override;

    std::string checkInvariants(
        const std::function<std::uint64_t(Addr)> &read) const override;

  private:
    Addr districtBase = 0;
    Addr itemBase = 0;
    Addr stockBase = 0;
    /** Per-district array of order-record pointers. */
    Addr orderDirBase = 0;
    std::uint64_t ordersPerDistrict = 0;
};

} // namespace strand

#endif // WORKLOADS_TPCC_HH
