# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("mem")
subdirs("cache")
subdirs("cpu")
subdirs("persist")
subdirs("runtime")
subdirs("workloads")
subdirs("sanitizer")
subdirs("core")
subdirs("crash")
subdirs("fuzz")
